// Naive infrastructure-free baseline (Section 3.3): flood the query within
// the KNNB boundary; every node inside routes its response back to the
// sink end-to-end and rebroadcasts the query. The paper rejects this
// design as "extremely resource-consuming ... because of the excessive
// number of independent routing paths"; it is implemented here for the
// ablation benches that quantify exactly that.

#ifndef DIKNN_BASELINES_FLOODING_H_
#define DIKNN_BASELINES_FLOODING_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "knn/knnb.h"
#include "knn/query.h"
#include "net/network.h"
#include "routing/gpsr.h"

namespace diknn {

/// Flooding tunables.
struct FloodingParams {
  double rebroadcast_jitter = 0.02;  ///< Max forwarding jitter (s).
  SimTime collect_window = 3.0;      ///< Sink waits this long for replies.
  SimTime query_timeout = 8.0;
  double max_radius_factor = 1.5;
  KnnbAreaModel knnb_area_model = KnnbAreaModel::kLune;  ///< See knnb.h.
};

/// Flooding behaviour counters.
struct FloodingStats {
  uint64_t queries_issued = 0;
  uint64_t queries_completed = 0;
  uint64_t rebroadcasts = 0;
  uint64_t replies_sent = 0;
  uint64_t replies_received = 0;
};

/// Boundary-bounded flooding with per-node response routing.
class Flooding : public KnnProtocol {
 public:
  Flooding(Network* network, GpsrRouting* gpsr, FloodingParams params = {});

  void Install() override;
  void IssueQuery(NodeId sink, Point q, int k, ResultHandler handler) override;
  std::string name() const override { return "Flooding"; }

  const FloodingStats& stats() const { return stats_; }

 private:
  struct QueryBootstrap : Message {
    KnnQuery query;
  };

  struct FloodMessage : Message {
    KnnQuery query;
    double radius = 0.0;
  };

  struct ReplyMessage : Message {
    uint64_t query_id = 0;
    KnnCandidate candidate;
  };

  struct PendingQuery {
    KnnQuery query;
    ResultHandler handler;
    std::vector<KnnCandidate> candidates;
    SimTime issued_at = 0;
    EventId complete_event = 0;
    bool completed = false;
  };

  void OnHomeNodeArrival(Node* node, const GeoRoutedMessage& msg);
  void OnFlood(Node* node, const FloodMessage& msg);
  void OnReply(Node* node, const ReplyMessage& msg);
  void CompleteQuery(uint64_t query_id);

  Network* network_;
  GpsrRouting* gpsr_;
  FloodingParams params_;
  FloodingStats stats_;

  uint64_t next_query_id_ = 1;
  std::unordered_map<uint64_t, PendingQuery> pending_;
  std::unordered_map<uint64_t, std::unordered_set<NodeId>> seen_;
};

}  // namespace diknn

#endif  // DIKNN_BASELINES_FLOODING_H_
