#include "baselines/flooding.h"

#include <algorithm>
#include <cmath>

namespace diknn {

namespace {
constexpr size_t kQueryBytes = 26;
constexpr size_t kFloodBytes = 30;
constexpr size_t kReplyBytes = 14;
}  // namespace

Flooding::Flooding(Network* network, GpsrRouting* gpsr,
                   FloodingParams params)
    : network_(network), gpsr_(gpsr), params_(params) {}

void Flooding::Install() {
  gpsr_->RegisterDelivery(
      MessageType::kFloodQuery,
      [this](Node* node, const GeoRoutedMessage& msg) {
        OnHomeNodeArrival(node, msg);
      });
  gpsr_->RegisterDelivery(
      MessageType::kFloodReply,
      [this](Node* node, const GeoRoutedMessage& msg) {
        OnReply(node, *static_cast<const ReplyMessage*>(msg.inner.get()));
      });
  for (Node* node : network_->AllNodes()) {
    node->RegisterHandler(
        MessageType::kFloodQuery, [this, node](const Packet& p) {
          OnFlood(node, *static_cast<const FloodMessage*>(p.payload.get()));
        });
  }
}

void Flooding::IssueQuery(NodeId sink, Point q, int k,
                          ResultHandler handler) {
  Node* sink_node = network_->node(sink);
  KnnQuery query;
  query.id = next_query_id_++;
  query.q = q;
  query.k = std::max(1, k);
  query.sink = sink;
  query.sink_position = sink_node->Position();

  PendingQuery pending;
  pending.query = query;
  pending.handler = std::move(handler);
  pending.issued_at = network_->sim().Now();
  const uint64_t id = query.id;
  pending.complete_event = network_->sim().ScheduleAfter(
      std::min(params_.collect_window + 1.0, params_.query_timeout),
      [this, id]() { CompleteQuery(id); });
  pending_.emplace(id, std::move(pending));
  ++stats_.queries_issued;

  auto bootstrap = std::make_shared<QueryBootstrap>();
  bootstrap->query = query;
  gpsr_->Send(sink_node, q, MessageType::kFloodQuery, std::move(bootstrap),
              kQueryBytes, EnergyCategory::kQuery, /*collect_info=*/true);
}

void Flooding::OnHomeNodeArrival(Node* node, const GeoRoutedMessage& msg) {
  const auto* bootstrap =
      static_cast<const QueryBootstrap*>(msg.inner.get());
  const KnnQuery& query = bootstrap->query;

  const Rect& field = network_->config().field;
  const double max_radius = params_.max_radius_factor * 0.5 *
                            std::hypot(field.Width(), field.Height());
  const KnnbResult knnb =
      Knnb(msg.info_list, query.q, network_->config().radio_range_m,
           query.k, max_radius, params_.knnb_area_model);

  auto flood = std::make_shared<FloodMessage>();
  flood->query = query;
  flood->radius = knnb.radius;
  OnFlood(node, *flood);  // The home node handles the flood locally too.
  node->SendBroadcast(MessageType::kFloodQuery, std::move(flood),
                      kFloodBytes, EnergyCategory::kQuery);
  ++stats_.rebroadcasts;
}

void Flooding::OnFlood(Node* node, const FloodMessage& msg) {
  if (node->is_infrastructure()) return;
  if (Distance(node->Position(), msg.query.q) > msg.radius) return;
  auto& seen = seen_[msg.query.id];
  if (!seen.insert(node->id()).second) return;

  // Route the individual response straight to the sink...
  auto reply = std::make_shared<ReplyMessage>();
  reply->query_id = msg.query.id;
  reply->candidate.id = node->id();
  reply->candidate.position = node->Position();
  reply->candidate.speed = node->Speed();
  reply->candidate.sampled_at = network_->sim().Now();
  gpsr_->Send(node, msg.query.sink_position, MessageType::kFloodReply,
              std::move(reply), kReplyBytes, EnergyCategory::kQuery, false,
              msg.query.sink);
  ++stats_.replies_sent;

  // ...and rebroadcast the query after a small jitter.
  auto copy = std::make_shared<FloodMessage>(msg);
  const double jitter = node->rng().Uniform(0.0, params_.rebroadcast_jitter);
  network_->sim().ScheduleAfter(jitter, [this, node, copy]() {
    if (!node->alive()) return;
    node->SendBroadcast(MessageType::kFloodQuery, copy, kFloodBytes,
                        EnergyCategory::kQuery);
    ++stats_.rebroadcasts;
  });
}

void Flooding::OnReply(Node* node, const ReplyMessage& msg) {
  auto it = pending_.find(msg.query_id);
  if (it == pending_.end()) return;
  if (node->id() != it->second.query.sink) return;
  ++stats_.replies_received;
  it->second.candidates.push_back(msg.candidate);
}

void Flooding::CompleteQuery(uint64_t query_id) {
  auto it = pending_.find(query_id);
  if (it == pending_.end() || it->second.completed) return;
  PendingQuery& pending = it->second;
  pending.completed = true;
  ++stats_.queries_completed;

  KnnResult result;
  result.query_id = query_id;
  result.candidates = pending.candidates;
  result.issued_at = pending.issued_at;
  result.completed_at = network_->sim().Now();
  PruneCandidates(&result.candidates, pending.query.q, pending.query.k);

  ResultHandler handler = std::move(pending.handler);
  pending_.erase(it);
  seen_.erase(query_id);
  if (handler) handler(result);
}

}  // namespace diknn
