// KPT baseline (Winter & Lee, DMSN 2004; Winter, Xu & Lee, MobiQuitous
// 2005), simulated per the paper's Section 5.1 fair-comparison setup:
// "we simulate KPT in which the KNNB algorithm is adopted for boundary
// estimation and a spanning tree is constructed for data collection after
// the boundary is determined."
//
// Flow: the query geo-routes from the sink to the home node (collecting
// the KNNB information list); the home node estimates the boundary R and
// floods a tree-construction message inside it. Every in-boundary node
// joins under the first builder it hears and rebroadcasts; a parent learns
// its children by overhearing their rebroadcasts. Aggregation runs leaf-
// to-root: leaves report after a short grace period, parents merge child
// aggregates and forward up when all expected children reported or a
// deadline expires. Mobility breaks parent links; the repair path re-sends
// the partial aggregate toward the home node via a fresh neighbor ("data
// may be forwarded again and again between new and old tree nodes"),
// which is exactly the maintenance overhead the paper attributes KPT's
// latency and energy growth to. Finally the home node sorts candidates
// and routes the k best back to the sink in a bundle.

#ifndef DIKNN_BASELINES_KPT_H_
#define DIKNN_BASELINES_KPT_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "knn/knnb.h"
#include "knn/query.h"
#include "net/network.h"
#include "routing/gpsr.h"

namespace diknn {

/// KPT tunables.
struct KptParams {
  /// Max rebroadcast jitter (s). Must spread the boundary-wide build
  /// flood over enough air time that the ~1.5 ms frames do not all
  /// collide; ~20 same-level nodes need on the order of 100+ ms.
  double build_jitter = 0.15;
  double leaf_wait = 0.1;        ///< Grace before a leaf reports.
  /// Per-level aggregation wait (s). Must exceed build_jitter plus the
  /// child aggregate's air time, or parents report before their children
  /// have even joined.
  double agg_slot = 0.22;
  double child_grace = 0.36;     ///< Extra wait for missing children (s);
                                 ///  this is where mobility- and
                                 ///  collision-induced losses turn into
                                 ///  the latency growth of Figs. 8(a)/9(a).
  int max_grace_rounds = 2;      ///< Deadline extensions per tree node.
  SimTime query_timeout = 8.0;   ///< Sink-side completion timeout.
  double max_radius_factor = 1.5;
  KnnbAreaModel knnb_area_model = KnnbAreaModel::kLune;  ///< See knnb.h.
  /// Use the *original* KPT conservative boundary R = k * MHD instead of
  /// KNNB (the paper replaced it for the comparison because "the query
  /// execution can easily flood the entire network" — with this on, it
  /// does). Off by default, matching the paper's KPT+KNNB setup.
  bool conservative_boundary = false;
  double mean_hop_distance = 15.0;  ///< MHD for the conservative bound.
};

/// KPT behaviour counters.
struct KptStats {
  uint64_t queries_issued = 0;
  uint64_t queries_completed = 0;
  uint64_t timeouts = 0;
  uint64_t tree_joins = 0;
  uint64_t build_broadcasts = 0;
  uint64_t aggregates_sent = 0;
  uint64_t parent_losses = 0;   ///< Unicast-to-parent failures.
  uint64_t repairs = 0;         ///< Re-sends via a substitute parent.
  uint64_t data_lost = 0;       ///< Aggregates dropped after repair failed.
};

/// KPT with KNNB boundary estimation (the paper's "KPT+KNNB").
class KptKnnb : public KnnProtocol {
 public:
  KptKnnb(Network* network, GpsrRouting* gpsr, KptParams params = {});

  void Install() override;
  void IssueQuery(NodeId sink, Point q, int k, ResultHandler handler) override;
  std::string name() const override { return "KPT+KNNB"; }

  const KptStats& stats() const { return stats_; }

 private:
  // -------- wire messages --------

  struct QueryBootstrap : Message {
    KnnQuery query;
  };

  struct TreeBuildMessage : Message {
    KnnQuery query;
    double radius = 0.0;    ///< KNNB boundary.
    int level = 0;          ///< Sender's tree depth (home node = 0).
    int depth_estimate = 0; ///< ceil(R / r) + 1, for deadlines.
    NodeId home = kInvalidNodeId;
    Point home_position;
  };

  struct AggregateMessage : Message {
    uint64_t query_id = 0;
    std::vector<KnnCandidate> candidates;  ///< Pruned to k.
    NodeId home = kInvalidNodeId;   ///< For stray re-forwarding.
    Point home_position;
  };

  struct ResultMessage : Message {
    uint64_t query_id = 0;
    std::vector<KnnCandidate> candidates;
  };

  // -------- per (query, node) tree state --------

  struct TreeNode {
    KnnQuery query;
    NodeId parent = kInvalidNodeId;
    int level = 0;
    int depth_estimate = 0;
    NodeId home = kInvalidNodeId;
    Point home_position;
    std::unordered_set<NodeId> expected_children;
    std::unordered_set<NodeId> reported_children;
    std::vector<KnnCandidate> buffer;  ///< Own + children data.
    bool sent_up = false;
    int grace_rounds = 0;     ///< Deadline extensions granted so far.
    EventId deadline_event = 0;
  };

  struct PendingQuery {
    KnnQuery query;
    ResultHandler handler;
    SimTime issued_at = 0;
    EventId timeout_event = 0;
    bool completed = false;
  };

  static uint64_t TreeKey(uint64_t query_id, NodeId node) {
    return (query_id << 20) | static_cast<uint64_t>(node & 0xfffff);
  }

  void OnHomeNodeArrival(Node* node, const GeoRoutedMessage& msg);
  void OnTreeBuild(Node* node, const Packet& packet);
  void MaybeSendUp(uint64_t key);
  void SendAggregateUp(Node* node, TreeNode* state);
  void OnAggregate(Node* node, NodeId from, const AggregateMessage& msg);
  void FinishAtHome(Node* node, TreeNode* state);
  void OnResult(Node* node, const GeoRoutedMessage& msg);
  void CompleteQuery(uint64_t query_id, bool timed_out);

  Network* network_;
  GpsrRouting* gpsr_;
  KptParams params_;
  KptStats stats_;

  uint64_t next_query_id_ = 1;
  std::unordered_map<uint64_t, TreeNode> tree_;      // By TreeKey.
  std::unordered_map<uint64_t, PendingQuery> pending_;
};

}  // namespace diknn

#endif  // DIKNN_BASELINES_KPT_H_
