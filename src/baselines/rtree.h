// In-memory R-tree (Guttman, SIGMOD 1984) over 2-D points.
//
// Peer-tree (Demirbas & Ferhatosmanoglu) decentralizes an R-tree into an
// MBR hierarchy over the sensor field; our Peer-tree baseline uses this
// structure inside every clusterhead to index member locations and at the
// root to index cell MBRs. It is also used by tests as a KNN ground-truth
// cross-check.
//
// Implementation: quadratic-split insertion, condense-tree deletion, and
// best-first (priority queue on MinDist) KNN search.

#ifndef DIKNN_BASELINES_RTREE_H_
#define DIKNN_BASELINES_RTREE_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "core/geometry.h"

namespace diknn {

/// R-tree over (id, point) records. Ids need not be unique; removal
/// matches on both id and position.
class RTree {
 private:
  // Forward declarations so the public NearestIterator can refer to the
  // node type; definitions follow in the private section below.
  struct Node;
  struct Entry;

 public:
  /// `max_entries` M >= 4; min entries is M * 0.4 (Guttman's suggestion).
  explicit RTree(int max_entries = 8);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;

  /// Inserts a record.
  void Insert(int64_t id, const Point& position);

  /// Removes the record with the given id at the given position.
  /// Returns false if no such record exists.
  bool Remove(int64_t id, const Point& position);

  /// Number of records.
  size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }

  /// Records inside (or on the border of) `rect`.
  std::vector<int64_t> Range(const Rect& rect) const;

  /// Up to k record ids nearest to `q`, best first.
  std::vector<int64_t> Knn(const Point& q, int k) const;

  /// Incremental nearest-neighbor browsing (Hjaltason & Samet, TODS
  /// 1999 — the paper's reference [12]): yields records in increasing
  /// distance from `q`, one at a time, without fixing k in advance.
  /// The iterator observes a snapshot-by-contract: do not modify the
  /// tree while one is live.
  class NearestIterator {
   public:
    /// True while more records remain.
    bool HasNext() const { return !heap_.empty(); }

    /// The next-nearest record id and its distance. Requires HasNext().
    std::pair<int64_t, double> Next();

   private:
    friend class RTree;
    struct HeapEntry {
      double dist;
      const Node* node;  // Non-null for subtrees.
      int64_t id;
      Point position;
      bool operator>(const HeapEntry& o) const { return dist > o.dist; }
    };
    explicit NearestIterator(const RTree* tree, Point q);

    // Expands subtree entries until a record is at the heap top.
    void Settle();

    Point q_;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
        heap_;
  };

  /// Begins distance browsing from `q`.
  NearestIterator Browse(const Point& q) const {
    return NearestIterator(this, q);
  }

  /// Bounding rectangle of all records (empty Rect when empty).
  Rect Bounds() const;

  /// Tree height (0 when empty, 1 when the root is a leaf).
  int Height() const;

  /// Structural invariant check used by tests: every child MBR is
  /// contained in its parent entry's MBR, leaf depths are uniform, and
  /// node occupancies are within [min, max] (root excepted).
  bool CheckInvariants() const;

 private:
  struct Node;
  struct Entry {
    Rect mbr;
    std::unique_ptr<Node> child;  // Internal entries.
    int64_t id = 0;               // Leaf entries.
    Point position;               // Leaf entries.
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
    Rect Mbr() const;
  };

  // Splits an overflowing node in place, moving roughly half its entries
  // into a fresh sibling (Guttman's quadratic split). Both sides end with
  // at least min_entries_ entries.
  void QuadraticSplit(Node* node, Node* sibling) const;
  bool RemoveRecursive(Node* node, int64_t id, const Point& position,
                       std::vector<Entry>* orphan_entries);
  int HeightOf(const Node* node) const;
  bool CheckNode(const Node* node, int depth, int leaf_depth) const;

  std::unique_ptr<Node> root_;
  int max_entries_;
  int min_entries_;
  size_t size_ = 0;
};

}  // namespace diknn

#endif  // DIKNN_BASELINES_RTREE_H_
