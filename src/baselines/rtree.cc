#include "baselines/rtree.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace diknn {

Rect RTree::Node::Mbr() const {
  Rect mbr = Rect::Empty();
  for (const Entry& e : entries) mbr = mbr.Union(e.mbr);
  return mbr;
}

RTree::RTree(int max_entries)
    : max_entries_(std::max(4, max_entries)),
      min_entries_(std::max(2, static_cast<int>(max_entries_ * 0.4))) {}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

void RTree::Insert(int64_t id, const Point& position) {
  if (!root_) {
    root_ = std::make_unique<Node>();
    root_->leaf = true;
  }

  // Descend to a leaf, enlarging MBRs on the way and recording the path.
  std::vector<Node*> path;
  Node* node = root_.get();
  while (!node->leaf) {
    path.push_back(node);
    Entry* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (Entry& e : node->entries) {
      const double area = e.mbr.Area();
      const double enlargement = e.mbr.Expanded(position).Area() - area;
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best_enlargement = enlargement;
        best_area = area;
        best = &e;
      }
    }
    assert(best != nullptr);
    best->mbr = best->mbr.Expanded(position);
    node = best->child.get();
  }

  Entry record;
  record.id = id;
  record.position = position;
  record.mbr = Rect{position, position};
  node->entries.push_back(std::move(record));
  ++size_;

  // Split overflowing nodes bottom-up.
  Node* current = node;
  while (current->entries.size() >
         static_cast<size_t>(max_entries_)) {
    auto sibling = std::make_unique<Node>();
    QuadraticSplit(current, sibling.get());
    if (current == root_.get()) {
      auto new_root = std::make_unique<Node>();
      new_root->leaf = false;
      Entry left;
      left.mbr = root_->Mbr();
      left.child = std::move(root_);
      Entry right;
      right.mbr = sibling->Mbr();
      right.child = std::move(sibling);
      new_root->entries.push_back(std::move(left));
      new_root->entries.push_back(std::move(right));
      root_ = std::move(new_root);
      break;
    }
    Node* parent = path.back();
    path.pop_back();
    for (Entry& pe : parent->entries) {
      if (pe.child.get() == current) {
        pe.mbr = current->Mbr();
        break;
      }
    }
    Entry fresh;
    fresh.mbr = sibling->Mbr();
    fresh.child = std::move(sibling);
    parent->entries.push_back(std::move(fresh));
    current = parent;
  }
}

void RTree::QuadraticSplit(Node* node, Node* sibling) const {
  std::vector<Entry> entries = std::move(node->entries);
  node->entries.clear();
  sibling->leaf = node->leaf;

  // Pick the two seeds wasting the most area when paired.
  size_t seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = entries[i].mbr.Union(entries[j].mbr).Area() -
                           entries[i].mbr.Area() - entries[j].mbr.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Rect mbr_a = entries[seed_a].mbr;
  Rect mbr_b = entries[seed_b].mbr;
  node->entries.push_back(std::move(entries[seed_a]));
  sibling->entries.push_back(std::move(entries[seed_b]));

  std::vector<Entry> remaining;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i == seed_a || i == seed_b) continue;
    remaining.push_back(std::move(entries[i]));
  }

  const size_t total = remaining.size() + 2;
  const size_t min_fill = static_cast<size_t>(min_entries_);
  for (Entry& e : remaining) {
    // Force-assign when one side must take all the rest to reach minimum.
    const size_t left = node->entries.size();
    const size_t right = sibling->entries.size();
    const size_t assigned = left + right;
    const size_t left_needed = min_fill > left ? min_fill - left : 0;
    const size_t right_needed = min_fill > right ? min_fill - right : 0;
    const size_t pending = total - assigned;
    bool to_a;
    if (left_needed >= pending) {
      to_a = true;
    } else if (right_needed >= pending) {
      to_a = false;
    } else {
      const double grow_a = mbr_a.Union(e.mbr).Area() - mbr_a.Area();
      const double grow_b = mbr_b.Union(e.mbr).Area() - mbr_b.Area();
      to_a = grow_a < grow_b ||
             (grow_a == grow_b && mbr_a.Area() <= mbr_b.Area());
    }
    if (to_a) {
      mbr_a = mbr_a.Union(e.mbr);
      node->entries.push_back(std::move(e));
    } else {
      mbr_b = mbr_b.Union(e.mbr);
      sibling->entries.push_back(std::move(e));
    }
  }
}

bool RTree::RemoveRecursive(Node* node, int64_t id, const Point& position,
                            std::vector<Entry>* orphan_entries) {
  if (node->leaf) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].id == id &&
          node->entries[i].position == position) {
        node->entries.erase(node->entries.begin() + i);
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < node->entries.size(); ++i) {
    Entry& e = node->entries[i];
    if (!e.mbr.Contains(position)) continue;
    if (!RemoveRecursive(e.child.get(), id, position, orphan_entries)) {
      continue;
    }
    if (e.child->entries.size() < static_cast<size_t>(min_entries_)) {
      // Condense: orphan the underflowing child's records for reinsertion.
      std::vector<Node*> stack{e.child.get()};
      while (!stack.empty()) {
        Node* n = stack.back();
        stack.pop_back();
        for (Entry& ce : n->entries) {
          if (n->leaf) {
            orphan_entries->push_back(std::move(ce));
          } else {
            stack.push_back(ce.child.get());
          }
        }
      }
      node->entries.erase(node->entries.begin() + i);
    } else {
      e.mbr = e.child->Mbr();
    }
    return true;
  }
  return false;
}

bool RTree::Remove(int64_t id, const Point& position) {
  if (!root_) return false;
  std::vector<Entry> orphans;
  if (!RemoveRecursive(root_.get(), id, position, &orphans)) {
    return false;
  }
  --size_;

  // Shrink the root while it has a single internal child.
  while (!root_->leaf && root_->entries.size() == 1) {
    root_ = std::move(root_->entries[0].child);
  }
  if (root_->entries.empty()) {
    root_.reset();  // Reinsertion below recreates the root if needed.
  }

  // Reinsert orphaned records. Insert() increments size_, but these
  // records never left the tree's logical contents, so compensate.
  for (Entry& e : orphans) {
    Insert(e.id, e.position);
    --size_;
  }
  return true;
}

std::vector<int64_t> RTree::Range(const Rect& rect) const {
  std::vector<int64_t> out;
  if (!root_) return out;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& e : node->entries) {
      if (!rect.Intersects(e.mbr)) continue;
      if (node->leaf) {
        out.push_back(e.id);
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  return out;
}

std::vector<int64_t> RTree::Knn(const Point& q, int k) const {
  std::vector<int64_t> out;
  if (!root_ || k <= 0) return out;

  struct QueueEntry {
    double dist;
    const Node* node;      // Non-null for subtrees.
    int64_t id;            // Valid when node == nullptr.
    bool operator>(const QueueEntry& o) const { return dist > o.dist; }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<>> heap;
  heap.push({0.0, root_.get(), 0});

  while (!heap.empty() && out.size() < static_cast<size_t>(k)) {
    QueueEntry top = heap.top();
    heap.pop();
    if (top.node == nullptr) {
      out.push_back(top.id);
      continue;
    }
    for (const Entry& e : top.node->entries) {
      if (top.node->leaf) {
        heap.push({Distance(e.position, q), nullptr, e.id});
      } else {
        heap.push({e.mbr.MinDistance(q), e.child.get(), 0});
      }
    }
  }
  return out;
}

RTree::NearestIterator::NearestIterator(const RTree* tree, Point q)
    : q_(q) {
  if (tree->root_) {
    heap_.push(HeapEntry{0.0, tree->root_.get(), 0, {}});
  }
  Settle();
}

void RTree::NearestIterator::Settle() {
  while (!heap_.empty() && heap_.top().node != nullptr) {
    const Node* node = heap_.top().node;
    heap_.pop();
    for (const RTree::Entry& e : node->entries) {
      if (node->leaf) {
        heap_.push(HeapEntry{Distance(e.position, q_), nullptr, e.id,
                             e.position});
      } else {
        heap_.push(HeapEntry{e.mbr.MinDistance(q_), e.child.get(), 0, {}});
      }
    }
  }
}

std::pair<int64_t, double> RTree::NearestIterator::Next() {
  assert(HasNext());
  const HeapEntry top = heap_.top();
  heap_.pop();
  Settle();
  return {top.id, top.dist};
}

Rect RTree::Bounds() const {
  return root_ ? root_->Mbr() : Rect::Empty();
}

int RTree::HeightOf(const Node* node) const {
  if (node == nullptr) return 0;
  if (node->leaf) return 1;
  return 1 + HeightOf(node->entries.front().child.get());
}

int RTree::Height() const { return HeightOf(root_.get()); }

bool RTree::CheckNode(const Node* node, int depth, int leaf_depth) const {
  const bool is_root = node == root_.get();
  if (!is_root && (node->entries.size() < static_cast<size_t>(min_entries_) ||
                   node->entries.size() > static_cast<size_t>(max_entries_))) {
    return false;
  }
  if (node->leaf) return depth == leaf_depth;
  for (const Entry& e : node->entries) {
    if (!e.child) return false;
    if (!e.mbr.Contains(e.child->Mbr())) return false;
    if (!CheckNode(e.child.get(), depth + 1, leaf_depth)) return false;
  }
  return true;
}

bool RTree::CheckInvariants() const {
  if (!root_) return size_ == 0;
  return CheckNode(root_.get(), 1, Height());
}

}  // namespace diknn
