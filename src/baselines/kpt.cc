#include "baselines/kpt.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/logging.h"

namespace diknn {

namespace {

constexpr size_t kQueryBytes = 26;
constexpr size_t kTreeBuildBytes = 46;
constexpr size_t kCandidateBytes = 12;

}  // namespace

KptKnnb::KptKnnb(Network* network, GpsrRouting* gpsr, KptParams params)
    : network_(network), gpsr_(gpsr), params_(params) {}

void KptKnnb::Install() {
  gpsr_->RegisterDelivery(
      MessageType::kKptQuery,
      [this](Node* node, const GeoRoutedMessage& msg) {
        OnHomeNodeArrival(node, msg);
      });
  gpsr_->RegisterDelivery(
      MessageType::kKptResult,
      [this](Node* node, const GeoRoutedMessage& msg) {
        OnResult(node, msg);
      });
  // Repaired / stray aggregates travel back by geo-routing; merge them
  // wherever they land (ideally the home node). `from` is invalid so the
  // stray path below cannot re-forward forever.
  gpsr_->RegisterDelivery(
      MessageType::kKptAggregate,
      [this](Node* node, const GeoRoutedMessage& msg) {
        OnAggregate(node, kInvalidNodeId,
                    *static_cast<const AggregateMessage*>(msg.inner.get()));
      });
  for (Node* node : network_->AllNodes()) {
    node->RegisterHandler(MessageType::kKptTreeBuild,
                          [this, node](const Packet& p) {
                            OnTreeBuild(node, p);
                          });
    node->RegisterHandler(
        MessageType::kKptAggregate, [this, node](const Packet& p) {
          OnAggregate(node, p.src,
                      *static_cast<const AggregateMessage*>(
                          p.payload.get()));
        });
  }
}

void KptKnnb::IssueQuery(NodeId sink, Point q, int k,
                         ResultHandler handler) {
  Node* sink_node = network_->node(sink);
  KnnQuery query;
  query.id = next_query_id_++;
  query.q = q;
  query.k = std::max(1, k);
  query.sink = sink;
  query.sink_position = sink_node->Position();

  // Garbage-collect tree state from queries long past their timeout.
  if (query.id > 4) {
    const uint64_t horizon = query.id - 4;
    std::erase_if(tree_,
                  [&](const auto& kv) { return (kv.first >> 20) < horizon; });
  }

  PendingQuery pending;
  pending.query = query;
  pending.handler = std::move(handler);
  pending.issued_at = network_->sim().Now();
  const uint64_t id = query.id;
  pending.timeout_event = network_->sim().ScheduleAfter(
      params_.query_timeout, [this, id]() { CompleteQuery(id, true); });
  pending_.emplace(id, std::move(pending));
  ++stats_.queries_issued;

  auto bootstrap = std::make_shared<QueryBootstrap>();
  bootstrap->query = query;
  gpsr_->Send(sink_node, q, MessageType::kKptQuery, std::move(bootstrap),
              kQueryBytes, EnergyCategory::kQuery, /*collect_info=*/true);
}

void KptKnnb::OnHomeNodeArrival(Node* node, const GeoRoutedMessage& msg) {
  const auto* bootstrap =
      static_cast<const QueryBootstrap*>(msg.inner.get());
  const KnnQuery& query = bootstrap->query;

  const Rect& field = network_->config().field;
  const double max_radius = params_.max_radius_factor * 0.5 *
                            std::hypot(field.Width(), field.Height());
  const double r = network_->config().radio_range_m;
  double radius;
  if (params_.conservative_boundary) {
    // Original KPT: R = k * MHD, clamped to the field so the flood at
    // least terminates (the paper notes it exceeds the field already at
    // k = 20 on the default setup).
    radius = std::min(
        KptConservativeRadius(query.k, params_.mean_hop_distance),
        max_radius);
  } else {
    radius = Knnb(msg.info_list, query.q, r, query.k, max_radius,
                  params_.knnb_area_model)
                 .radius;
  }

  const uint64_t key = TreeKey(query.id, node->id());
  TreeNode state;
  state.query = query;
  state.parent = kInvalidNodeId;
  state.level = 0;
  state.depth_estimate =
      static_cast<int>(std::ceil(radius / r)) + 1;
  state.home = node->id();
  state.home_position = node->Position();
  if (!node->is_infrastructure()) {
    KnnCandidate self;
    self.id = node->id();
    self.position = node->Position();
    self.speed = node->Speed();
    self.sampled_at = network_->sim().Now();
    state.buffer.push_back(self);
  }

  // Flood the tree-construction message inside the boundary.
  auto build = std::make_shared<TreeBuildMessage>();
  build->query = query;
  build->radius = radius;
  build->level = 0;
  build->depth_estimate = state.depth_estimate;
  build->home = node->id();
  build->home_position = node->Position();
  node->SendBroadcast(MessageType::kKptTreeBuild, std::move(build),
                      kTreeBuildBytes, EnergyCategory::kQuery);
  ++stats_.build_broadcasts;

  // Home deadline: enough slots for the deepest leaf to bubble up.
  const double deadline =
      params_.leaf_wait +
      (state.depth_estimate + 2) * params_.agg_slot;
  state.deadline_event = network_->sim().ScheduleAfter(
      deadline, [this, key]() { MaybeSendUp(key); });
  tree_[key] = std::move(state);
}

void KptKnnb::OnTreeBuild(Node* node, const Packet& packet) {
  const auto* msg =
      static_cast<const TreeBuildMessage*>(packet.payload.get());
  if (node->is_infrastructure()) return;

  const uint64_t key = TreeKey(msg->query.id, node->id());
  if (tree_.contains(key)) return;  // Already joined under someone.

  // Not joined yet: join under the sender if we are inside the boundary.
  if (Distance(node->Position(), msg->query.q) > msg->radius) return;

  TreeNode state;
  state.query = msg->query;
  state.parent = packet.src;
  state.level = msg->level + 1;
  state.depth_estimate = msg->depth_estimate;
  state.home = msg->home;
  state.home_position = msg->home_position;
  KnnCandidate self;
  self.id = node->id();
  self.position = node->Position();
  self.speed = node->Speed();
  self.sampled_at = network_->sim().Now();
  state.buffer.push_back(self);
  ++stats_.tree_joins;

  // Tell the parent to expect our aggregate. (In a real deployment this
  // piggybacks on the rebroadcast the parent overhears; the state mirror
  // keeps it explicit.)
  const uint64_t parent_key = TreeKey(msg->query.id, packet.src);
  auto parent_it = tree_.find(parent_key);
  if (parent_it != tree_.end() && !parent_it->second.sent_up) {
    parent_it->second.expected_children.insert(node->id());
  }

  // Rebroadcast after a small jitter to recruit the next level.
  auto rebuild = std::make_shared<TreeBuildMessage>(*msg);
  rebuild->level = state.level;
  const double jitter = node->rng().Uniform(0.0, params_.build_jitter);
  network_->sim().ScheduleAfter(jitter, [this, node, rebuild]() {
    if (!node->alive()) return;
    node->SendBroadcast(MessageType::kKptTreeBuild, rebuild,
                        kTreeBuildBytes, EnergyCategory::kQuery);
    ++stats_.build_broadcasts;
  });

  // Aggregation deadline: deeper nodes fire earlier so data flows upward.
  const int levels_below =
      std::max(0, state.depth_estimate - state.level);
  const double deadline =
      params_.leaf_wait + levels_below * params_.agg_slot;
  state.deadline_event = network_->sim().ScheduleAfter(
      deadline, [this, key]() { MaybeSendUp(key); });
  tree_[key] = std::move(state);
}

void KptKnnb::MaybeSendUp(uint64_t key) {
  auto it = tree_.find(key);
  if (it == tree_.end() || it->second.sent_up) return;
  TreeNode& state = it->second;

  // Children missing at the deadline: grant one grace extension so their
  // MAC retries / repair paths can land. Tree damage (mobility) and
  // collision storms (large k) therefore stretch latency, as the paper
  // observes for KPT.
  bool missing_child = false;
  for (NodeId child : state.expected_children) {
    if (!state.reported_children.contains(child)) {
      missing_child = true;
      break;
    }
  }
  if (missing_child && state.grace_rounds < params_.max_grace_rounds) {
    ++state.grace_rounds;
    state.deadline_event = network_->sim().ScheduleAfter(
        params_.child_grace, [this, key]() { MaybeSendUp(key); });
    return;
  }

  state.sent_up = true;
  network_->sim().Cancel(state.deadline_event);

  Node* node = network_->node(static_cast<NodeId>(key & 0xfffff));
  if (state.parent == kInvalidNodeId) {
    FinishAtHome(node, &state);
  } else {
    SendAggregateUp(node, &state);
  }
}

void KptKnnb::SendAggregateUp(Node* node, TreeNode* state) {
  PruneCandidates(&state->buffer, state->query.q, state->query.k);
  auto aggregate = std::make_shared<AggregateMessage>();
  aggregate->query_id = state->query.id;
  aggregate->candidates = state->buffer;
  aggregate->home = state->home;
  aggregate->home_position = state->home_position;
  const size_t bytes = 6 + aggregate->candidates.size() * kCandidateBytes;
  ++stats_.aggregates_sent;

  // The parent was chosen at join time; if it has since gone beacon-stale
  // it is likely out of range — repair immediately rather than burning
  // MAC retries on a dead link.
  const SimTime now = network_->sim().Now();
  NodeId target = state->parent;
  if (!node->neighbors().Lookup(target, now).has_value()) {
    ++stats_.parent_losses;
    ++stats_.repairs;
    const auto substitute =
        node->neighbors().ClosestTo(state->home_position, now);
    if (!substitute.has_value()) {
      ++stats_.data_lost;
      return;
    }
    target = substitute->id;
  }

  const Point home_position = state->home_position;
  const NodeId home = state->home;
  node->SendUnicast(
      target, MessageType::kKptAggregate, aggregate, bytes,
      EnergyCategory::kQuery,
      [this, node, aggregate, bytes, home, home_position,
       target](bool success) {
        if (success) return;
        // The link failed anyway ("data may be forwarded again and again
        // between new and old tree nodes"): evict it and fall back to
        // geo-routing the partial aggregate toward the home node.
        ++stats_.parent_losses;
        ++stats_.repairs;
        node->neighbors().Remove(target);
        gpsr_->Send(node, home_position, MessageType::kKptAggregate,
                    aggregate, bytes, EnergyCategory::kQuery, false, home);
      });
}

void KptKnnb::OnAggregate(Node* node, NodeId from,
                          const AggregateMessage& msg) {
  const uint64_t key = TreeKey(msg.query_id, node->id());
  auto it = tree_.find(key);
  if (it == tree_.end() || it->second.sent_up) {
    // Stray aggregate: this node already reported (or never joined).
    // Re-forward it toward the home node by geo-routing; if the home has
    // already finalized, the data is lost there — the "partially
    // collected data ... forwarded again and again" failure of Section 2.
    // Geo-delivered strays (from == invalid) are not re-forwarded, so a
    // wandering aggregate cannot loop.
    if (from != kInvalidNodeId && msg.home != kInvalidNodeId &&
        node->id() != msg.home) {
      auto copy = std::make_shared<AggregateMessage>(msg);
      const size_t bytes = 6 + copy->candidates.size() * kCandidateBytes;
      gpsr_->Send(node, msg.home_position, MessageType::kKptAggregate,
                  std::move(copy), bytes, EnergyCategory::kQuery, false,
                  msg.home);
    } else {
      ++stats_.data_lost;
    }
    return;
  }
  TreeNode& state = it->second;
  for (const KnnCandidate& c : msg.candidates) state.buffer.push_back(c);
  state.reported_children.insert(from);

  // Early completion: every known child has reported.
  bool all_reported = !state.expected_children.empty();
  for (NodeId child : state.expected_children) {
    if (!state.reported_children.contains(child)) {
      all_reported = false;
      break;
    }
  }
  if (all_reported) MaybeSendUp(key);
}

void KptKnnb::FinishAtHome(Node* node, TreeNode* state) {
  PruneCandidates(&state->buffer, state->query.q, state->query.k);
  auto result = std::make_shared<ResultMessage>();
  result->query_id = state->query.id;
  result->candidates = state->buffer;
  const size_t bytes = 6 + result->candidates.size() * kCandidateBytes;
  gpsr_->Send(node, state->query.sink_position, MessageType::kKptResult,
              std::move(result), bytes, EnergyCategory::kQuery, false,
              state->query.sink);
}

void KptKnnb::OnResult(Node* node, const GeoRoutedMessage& msg) {
  const auto* result = static_cast<const ResultMessage*>(msg.inner.get());
  auto it = pending_.find(result->query_id);
  if (it == pending_.end()) return;
  PendingQuery& pending = it->second;
  if (node->id() != pending.query.sink) return;

  KnnResult out;
  out.query_id = result->query_id;
  out.candidates = result->candidates;
  out.issued_at = pending.issued_at;
  out.completed_at = network_->sim().Now();
  out.timed_out = false;
  PruneCandidates(&out.candidates, pending.query.q, pending.query.k);

  pending.completed = true;
  network_->sim().Cancel(pending.timeout_event);
  ++stats_.queries_completed;
  ResultHandler handler = std::move(pending.handler);
  pending_.erase(it);
  if (handler) handler(out);
}

void KptKnnb::CompleteQuery(uint64_t query_id, bool timed_out) {
  auto it = pending_.find(query_id);
  if (it == pending_.end() || it->second.completed) return;
  PendingQuery& pending = it->second;
  pending.completed = true;
  if (timed_out) ++stats_.timeouts;

  KnnResult result;
  result.query_id = query_id;
  result.issued_at = pending.issued_at;
  result.completed_at = network_->sim().Now();
  result.timed_out = timed_out;

  ResultHandler handler = std::move(pending.handler);
  pending_.erase(it);
  if (handler) handler(result);
}

}  // namespace diknn
