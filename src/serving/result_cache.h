// Sink-side KNN result cache with validity-time-T expiry.
//
// The paper's own mobility analysis (Section 4.3) gives the staleness
// contract: under bounded node speed mu_max, a DIKNN answer stays useful
// while no reported node can have drifted further than the protocol's own
// assurance budget. We budget one radio range of drift, so an entry's
// validity time is
//
//   T = min(ttl_cap, radio_range / mu_max)        (mu_max > 0)
//   T = ttl_cap                                   (static network)
//
// Entries are keyed on (cache-grid cell of the query point, query class)
// and store the k they were seeded with: a lookup for k' <= k is a hit
// and returns the stored superset re-pruned around the querier's own
// point, so two queries in the same cell share one itinerary's answer
// without sharing an exact query point. Expiry is exact: a lookup at
// insertion time + T (or later) misses; any earlier lookup hits.
//
// Everything is plain deterministic data — no clocks, no RNG — so cached
// runs are bit-identical at any harness --jobs count.

#ifndef DIKNN_SERVING_RESULT_CACHE_H_
#define DIKNN_SERVING_RESULT_CACHE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/geometry.h"
#include "knn/query.h"

namespace diknn {

class ResultCache {
 public:
  /// `ttl_cap` bounds the validity time from above (the cache@ttl spec
  /// key); `cells` is the grid resolution per field axis; `max_speed` is
  /// the network's mu_max (m/s) and `radio_range` its r (m), from which
  /// the mobility validity time is derived.
  ResultCache(double ttl_cap, const Rect& field, int cells, double max_speed,
              double radio_range);

  /// The effective validity time T (see file comment).
  double effective_ttl() const { return ttl_; }

  /// Cache-grid cell index of `p` (row-major, clamped into the field).
  int32_t CellOf(const Point& p) const;

  /// Cell edge lengths (m), for tests and diagnostics.
  double cell_width() const { return cell_w_; }
  double cell_height() const { return cell_h_; }

  /// Returns the cached answer for (`cell`, `cls`) re-pruned to the k
  /// nearest around `q`, when an entry with stored k >= `k` is still
  /// valid at `now`; std::nullopt on a miss. `expired_out`, when
  /// non-null, is set when the miss was caused by expiry (an entry
  /// existed but aged out).
  std::optional<std::vector<KnnCandidate>> Lookup(int32_t cell, int cls,
                                                  int k, const Point& q,
                                                  SimTime now,
                                                  bool* expired_out = nullptr);

  /// Seeds (`cell`, `cls`) with a completed answer. A still-valid entry
  /// holding a strictly larger k is kept (it serves a superset of the
  /// lookups this one could); anything else is overwritten.
  void Insert(int32_t cell, int cls, int k,
              std::vector<KnnCandidate> candidates, SimTime now);

  /// Live entries (expired entries count until overwritten).
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    int k = 0;
    std::vector<KnnCandidate> candidates;
    SimTime inserted_at = 0.0;
  };

  static uint64_t Key(int32_t cell, int cls) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(cell)) << 8) |
           static_cast<uint64_t>(cls & 0xff);
  }

  double ttl_;
  Rect field_;
  int cells_;
  double cell_w_;
  double cell_h_;
  std::unordered_map<uint64_t, Entry> entries_;
};

}  // namespace diknn

#endif  // DIKNN_SERVING_RESULT_CACHE_H_
