// Deadline-aware admission: predict a query's completion time and shed
// the ones that cannot finish before their deadline, instead of letting
// their itineraries burn shared airtime.
//
// The predictor keeps one EWMA of observed protocol latency per *cell
// ring* — the Chebyshev distance, in cache-grid cells, between the query
// point's cell and the sink's cell — because itinerary length (and hence
// completion time) grows with that distance. Every protocol-launched
// completion (including timeouts, which are exactly the congestion signal
// shedding must react to) feeds the ring it ran in; a ring with no
// history borrows the nearest ring that has some.
//
// Shedding without feedback is a trap: once the estimate exceeds every
// deadline, nothing launches, so nothing is ever observed and the gate
// never reopens. Every kProbeInterval-th would-be-shed query is therefore
// launched anyway as a deterministic probe, keeping fresh samples flowing
// while the network recovers.

#ifndef DIKNN_SERVING_ADMISSION_H_
#define DIKNN_SERVING_ADMISSION_H_

#include <array>
#include <cstdint>

namespace diknn {

class CompletionPredictor {
 public:
  /// Rings at or beyond this index share one bucket.
  static constexpr int kNumRings = 16;
  /// Every Nth would-be-shed query launches as a probe.
  static constexpr int kProbeInterval = 8;

  /// `alpha` is the EWMA gain; `min_samples` the total observation count
  /// required before any shed decision is made.
  explicit CompletionPredictor(double alpha = 0.25, int min_samples = 5)
      : alpha_(alpha), min_samples_(min_samples) {}

  /// Feeds one observed protocol latency (s) for a query in `ring`.
  void Observe(int ring, double latency);

  /// Estimated completion latency for `ring`: its EWMA, or the nearest
  /// ring's when it has no history yet. 0 with no history at all.
  double Estimate(int ring) const;

  /// True once enough history exists to shed at all.
  bool CanPredict() const {
    return total_samples_ >= static_cast<uint64_t>(min_samples_);
  }

  /// Decides whether a query with `budget` seconds left before its
  /// deadline should be shed. Returns true to shed; flips every
  /// kProbeInterval-th shed into a probe (returns false and counts it in
  /// `probes()`).
  bool ShouldShed(int ring, double budget);

  uint64_t total_samples() const { return total_samples_; }
  uint64_t probes() const { return probes_; }

 private:
  static int ClampRing(int ring);

  double alpha_;
  int min_samples_;
  std::array<double, kNumRings> ewma_ = {};
  std::array<uint64_t, kNumRings> samples_ = {};
  uint64_t total_samples_ = 0;
  uint64_t shed_streak_ = 0;  ///< Shed decisions since the last probe.
  uint64_t probes_ = 0;
};

}  // namespace diknn

#endif  // DIKNN_SERVING_ADMISSION_H_
