#include "serving/result_cache.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace diknn {

ResultCache::ResultCache(double ttl_cap, const Rect& field, int cells,
                         double max_speed, double radio_range)
    : ttl_(ttl_cap), field_(field), cells_(std::max(cells, 1)) {
  // Mobility validity time: the answer's nodes stay within one radio
  // range of their reported positions for radio_range / mu_max seconds.
  if (max_speed > 0.0 && radio_range > 0.0) {
    ttl_ = std::min(ttl_, radio_range / max_speed);
  }
  cell_w_ = std::max(field_.Width() / cells_, 1e-9);
  cell_h_ = std::max(field_.Height() / cells_, 1e-9);
}

int32_t ResultCache::CellOf(const Point& p) const {
  int32_t cx = static_cast<int32_t>(std::floor((p.x - field_.min.x) / cell_w_));
  int32_t cy = static_cast<int32_t>(std::floor((p.y - field_.min.y) / cell_h_));
  cx = std::clamp(cx, 0, cells_ - 1);
  cy = std::clamp(cy, 0, cells_ - 1);
  return cy * cells_ + cx;
}

std::optional<std::vector<KnnCandidate>> ResultCache::Lookup(
    int32_t cell, int cls, int k, const Point& q, SimTime now,
    bool* expired_out) {
  if (expired_out != nullptr) *expired_out = false;
  const auto it = entries_.find(Key(cell, cls));
  if (it == entries_.end()) return std::nullopt;
  const Entry& entry = it->second;
  // Exact expiry: valid strictly before inserted_at + T, expired at it.
  if (!(now - entry.inserted_at < ttl_)) {
    if (expired_out != nullptr) *expired_out = true;
    entries_.erase(it);
    return std::nullopt;
  }
  if (entry.k < k) return std::nullopt;  // Not a superset of this ask.
  std::vector<KnnCandidate> answer = entry.candidates;
  PruneCandidates(&answer, q, static_cast<size_t>(k));
  return answer;
}

void ResultCache::Insert(int32_t cell, int cls, int k,
                         std::vector<KnnCandidate> candidates, SimTime now) {
  const uint64_t key = Key(cell, cls);
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.k > k &&
      now - it->second.inserted_at < ttl_) {
    return;  // The resident superset serves strictly more lookups.
  }
  entries_[key] = Entry{k, std::move(candidates), now};
}

}  // namespace diknn
