#include "serving/coalescer.h"

namespace diknn {

std::optional<uint64_t> QueryCoalescer::TryAttach(uint64_t key,
                                                  uint64_t ticket, int k,
                                                  SimTime now) {
  const auto key_it = by_key_.find(key);
  if (key_it == by_key_.end()) return std::nullopt;
  const auto it = by_ticket_.find(key_it->second);
  if (it == by_ticket_.end()) return std::nullopt;
  Leader& leader = it->second;
  if (now - leader.launched_at > window_) return std::nullopt;
  if (k > leader.k + kslack_) return std::nullopt;
  leader.followers.push_back(Follower{ticket, k});
  return leader.ticket;
}

void QueryCoalescer::RegisterLeader(uint64_t key, uint64_t ticket, int k,
                                    SimTime now) {
  // A replaced leader (too old or too small a k to attach to) keeps its
  // followers in by_ticket_ and still fans out on completion; it just
  // stops being the key's attach target.
  by_key_[key] = ticket;
  by_ticket_[ticket] = Leader{ticket, k, now, {}};
  leader_key_[ticket] = key;
}

std::vector<QueryCoalescer::Follower> QueryCoalescer::OnLeaderResolved(
    uint64_t ticket) {
  const auto it = by_ticket_.find(ticket);
  if (it == by_ticket_.end()) return {};
  std::vector<Follower> followers = std::move(it->second.followers);
  by_ticket_.erase(it);
  const auto key_it = leader_key_.find(ticket);
  if (key_it != leader_key_.end()) {
    const auto current = by_key_.find(key_it->second);
    if (current != by_key_.end() && current->second == ticket) {
      by_key_.erase(current);
    }
    leader_key_.erase(key_it);
  }
  return followers;
}

}  // namespace diknn
