// Shared types of the query-admission front end (src/serving): the
// tunables parsed from a WorkloadSpec's cache@ / coalesce@ / admit@shed
// clauses, the per-run serving counters carried in every SloReport, and
// the per-query serving path recorded for analysis.
//
// This header is dependency-free so the workload layer can embed the
// counters in its reports without linking the serving library.

#ifndef DIKNN_SERVING_SERVING_TYPES_H_
#define DIKNN_SERVING_SERVING_TYPES_H_

#include <cstdint>

namespace diknn {

/// Front-end tunables, normally filled from a WorkloadSpec.
struct ServingParams {
  /// Result-cache time-to-live cap (s); 0 disables the cache. The
  /// effective TTL is further capped by the mobility-derived validity
  /// time T = radio_range / max_speed (see ResultCache).
  double cache_ttl = 0.0;
  /// Cache-grid resolution: cells per field axis.
  int cache_cells = 16;
  /// Maximum age (s) of an in-flight leader a new co-located query may
  /// attach to; 0 disables coalescing.
  double coalesce_window = 0.0;
  /// A follower may request up to `kslack` more neighbors than its
  /// leader; the excess goes unfilled (partial answer).
  int coalesce_kslack = 0;
  /// Deadline-aware admission: shed queries whose predicted completion
  /// time already exceeds their deadline.
  bool shed = false;

  /// True when any stage is active (the driver builds a front end).
  bool Enabled() const {
    return cache_ttl > 0.0 || coalesce_window > 0.0 || shed;
  }
};

/// How one query was served by the front end.
enum class ServingPath : uint8_t {
  kDirect = 0,  ///< Launched on the protocol (leader or no front end).
  kCacheHit,    ///< Answered from the result cache; no channel traffic.
  kFollower,    ///< Attached to an in-flight leader; answer fanned out.
  kShed,        ///< Dropped by deadline-aware admission; never launched.
};

const char* ServingPathName(ServingPath path);

/// Per-run serving counters. Merged across runs by addition (integers),
/// so aggregates are bit-identical at any harness --jobs count.
struct ServingCounters {
  uint64_t cache_hits = 0;        ///< Queries answered from the cache.
  uint64_t cache_misses = 0;      ///< Lookups that found nothing usable.
  uint64_t cache_expired = 0;     ///< Misses caused by validity-T expiry.
  uint64_t cache_insertions = 0;  ///< Completions that seeded the cache.
  uint64_t coalesced = 0;         ///< Followers attached to a leader.
  uint64_t fanned_out = 0;        ///< Follower answers delivered.
  uint64_t shed = 0;              ///< Queries dropped by admission.
  uint64_t shed_probes = 0;       ///< Would-be sheds launched as probes.

  void Merge(const ServingCounters& other) {
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_expired += other.cache_expired;
    cache_insertions += other.cache_insertions;
    coalesced += other.coalesced;
    fanned_out += other.fanned_out;
    shed += other.shed;
    shed_probes += other.shed_probes;
  }

  /// True when the front end did anything at all this run.
  bool Any() const {
    return cache_hits + cache_misses + coalesced + shed + shed_probes > 0;
  }

  bool operator==(const ServingCounters&) const = default;
};

}  // namespace diknn

#endif  // DIKNN_SERVING_SERVING_TYPES_H_
