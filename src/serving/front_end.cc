#include "serving/front_end.h"

#include <algorithm>
#include <cstdlib>

namespace diknn {

const char* ServingPathName(ServingPath path) {
  switch (path) {
    case ServingPath::kDirect:
      return "direct";
    case ServingPath::kCacheHit:
      return "cache_hit";
    case ServingPath::kFollower:
      return "follower";
    case ServingPath::kShed:
      return "shed";
  }
  return "?";
}

ServingFrontEnd::ServingFrontEnd(const ServingParams& params,
                                 const Rect& field, double max_speed,
                                 double radio_range)
    : params_(params),
      cache_(params.cache_ttl, field, params.cache_cells, max_speed,
             radio_range),
      coalescer_(params.coalesce_window, params.coalesce_kslack) {}

int ServingFrontEnd::RingOf(const Point& q, const Point& sink_pos) const {
  // Cells are row-major with cache_cells columns (see ResultCache).
  const int32_t cols = std::max(params_.cache_cells, 1);
  const int32_t qc = cache_.CellOf(q);
  const int32_t sc = cache_.CellOf(sink_pos);
  const int32_t dx = qc % cols - sc % cols;
  const int32_t dy = qc / cols - sc / cols;
  return std::max(std::abs(dx), std::abs(dy));
}

ServingFrontEnd::Decision ServingFrontEnd::Route(uint64_t ticket,
                                                 const Point& q,
                                                 const Point& sink_pos,
                                                 int cls, int k,
                                                 double budget, SimTime now) {
  Decision decision;
  const int32_t cell = cache_.CellOf(q);
  const uint64_t key = KeyOf(cell, cls);

  // Stage 1: the cache answers for free, so it is always checked first.
  if (params_.cache_ttl > 0.0) {
    bool expired = false;
    auto hit = cache_.Lookup(cell, cls, k, q, now, &expired);
    if (hit.has_value()) {
      ++counters_.cache_hits;
      decision.action = Decision::Action::kCacheHit;
      decision.candidates = std::move(*hit);
      return decision;
    }
    ++counters_.cache_misses;
    if (expired) ++counters_.cache_expired;
  }

  // Stage 2: riding an in-flight itinerary costs nothing either.
  if (params_.coalesce_window > 0.0) {
    const auto leader = coalescer_.TryAttach(key, ticket, k, now);
    if (leader.has_value()) {
      ++counters_.coalesced;
      decision.action = Decision::Action::kFollower;
      decision.leader = *leader;
      return decision;
    }
  }

  // Stage 3: this query would launch an itinerary — shed it if it cannot
  // finish in time anyway.
  if (params_.shed && budget != 0.0) {
    const int ring = RingOf(q, sink_pos);
    if (budget < 0.0) {
      // Already past its deadline (queue wait ate the whole budget):
      // launching is certain waste, no prediction needed.
      ++counters_.shed;
      decision.action = Decision::Action::kShed;
      decision.estimate = predictor_.Estimate(ring);
      return decision;
    }
    const uint64_t probes_before = predictor_.probes();
    if (predictor_.ShouldShed(ring, budget)) {
      ++counters_.shed;
      decision.action = Decision::Action::kShed;
      decision.estimate = predictor_.Estimate(ring);
      return decision;
    }
    if (predictor_.probes() > probes_before) ++counters_.shed_probes;
  }

  if (params_.coalesce_window > 0.0) {
    coalescer_.RegisterLeader(key, ticket, k, now);
  }
  decision.action = Decision::Action::kLaunch;
  return decision;
}

std::vector<QueryCoalescer::Follower> ServingFrontEnd::OnResolved(
    uint64_t ticket, const Point& q, const Point& sink_pos, int cls, int k,
    const std::vector<KnnCandidate>& candidates, double protocol_latency,
    bool timed_out, SimTime now) {
  predictor_.Observe(RingOf(q, sink_pos), protocol_latency);
  if (params_.cache_ttl > 0.0 && !timed_out && !candidates.empty()) {
    cache_.Insert(cache_.CellOf(q), cls, k, candidates, now);
    ++counters_.cache_insertions;
  }
  auto followers = coalescer_.OnLeaderResolved(ticket);
  counters_.fanned_out += followers.size();
  return followers;
}

std::vector<KnnCandidate> ServingFrontEnd::TruncateFor(
    const std::vector<KnnCandidate>& superset, const Point& q, int k) {
  std::vector<KnnCandidate> out = superset;
  PruneCandidates(&out, q, static_cast<size_t>(std::max(k, 0)));
  return out;
}

}  // namespace diknn
