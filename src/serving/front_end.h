// The query-admission front end: the serving layer between the workload
// driver and the KNN protocol.
//
// Three cooperating stages, each individually optional (see
// ServingParams / the cache@, coalesce@ and admit@shed spec clauses):
//
//   1. Result cache — answers a query from a still-valid previous answer
//      for the same (cache cell, class) without touching the channel.
//   2. Query coalescing — attaches a query to a co-located in-flight
//      leader; the leader's answer fans back out on completion.
//   3. Deadline-aware admission — sheds queries whose predicted
//      completion time (per-cell-ring EWMA of observed latencies)
//      already exceeds their deadline, instead of burning airtime.
//
// The front end is pure bookkeeping over the simulator's deterministic
// event order: it never draws randomness, schedules events, or touches
// the network, so any run through it is bit-identical at any --jobs
// count, traced or untraced. The driver remains responsible for SLO
// accounting and for actually launching / resolving queries; Route() and
// OnResolved() just tell it what to do.

#ifndef DIKNN_SERVING_FRONT_END_H_
#define DIKNN_SERVING_FRONT_END_H_

#include <cstdint>
#include <vector>

#include "core/geometry.h"
#include "knn/query.h"
#include "serving/admission.h"
#include "serving/coalescer.h"
#include "serving/result_cache.h"
#include "serving/serving_types.h"

namespace diknn {

class ServingFrontEnd {
 public:
  /// `field`, `max_speed` and `radio_range` come from the network config;
  /// they size the cache grid and derive the validity time T.
  ServingFrontEnd(const ServingParams& params, const Rect& field,
                  double max_speed, double radio_range);

  /// What the driver should do with one arriving point-KNN query.
  struct Decision {
    enum class Action {
      kLaunch,    ///< Launch on the protocol; query registered as leader.
      kCacheHit,  ///< Resolve immediately with `candidates`.
      kFollower,  ///< Park the query; it resolves when `leader` does.
      kShed,      ///< Reject now; predicted completion misses the deadline.
    };
    Action action = Action::kLaunch;
    std::vector<KnnCandidate> candidates;  ///< kCacheHit only.
    uint64_t leader = 0;                   ///< kFollower only.
    double estimate = 0.0;                 ///< kShed: predicted latency (s).
  };

  /// Routes query `ticket` (point `q`, issued at a sink currently at
  /// `sink_pos`) through cache -> coalesce -> admission. `budget` is the
  /// time remaining before the query's deadline: > 0 runs the predictive
  /// shed check, < 0 sheds outright (the deadline already passed while
  /// the query queued), and exactly 0 means "no deadline". On kLaunch
  /// the ticket is registered as the coalesce leader for its cell.
  Decision Route(uint64_t ticket, const Point& q, const Point& sink_pos,
                 int cls, int k, double budget, SimTime now);

  /// A protocol-launched query resolved. Feeds the completion predictor,
  /// seeds the cache (successful completions only), and returns the
  /// followers to fan the answer out to, in attach order.
  std::vector<QueryCoalescer::Follower> OnResolved(
      uint64_t ticket, const Point& q, const Point& sink_pos, int cls, int k,
      const std::vector<KnnCandidate>& candidates, double protocol_latency,
      bool timed_out, SimTime now);

  /// Re-prunes a leader's (or cached) superset around one follower's own
  /// query point, truncated to its k.
  static std::vector<KnnCandidate> TruncateFor(
      const std::vector<KnnCandidate>& superset, const Point& q, int k);

  const ServingParams& params() const { return params_; }
  const ServingCounters& counters() const { return counters_; }
  const ResultCache& cache() const { return cache_; }
  const QueryCoalescer& coalescer() const { return coalescer_; }
  const CompletionPredictor& predictor() const { return predictor_; }

  /// Chebyshev cell distance between `q`'s cell and the sink's cell.
  int RingOf(const Point& q, const Point& sink_pos) const;

 private:
  /// Coalesce/cache key: cell in the high bits, class in the low byte.
  static uint64_t KeyOf(int32_t cell, int cls) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(cell)) << 8) |
           static_cast<uint64_t>(cls & 0xff);
  }

  ServingParams params_;
  ResultCache cache_;
  QueryCoalescer coalescer_;
  CompletionPredictor predictor_;
  ServingCounters counters_;
};

}  // namespace diknn

#endif  // DIKNN_SERVING_FRONT_END_H_
