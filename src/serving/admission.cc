#include "serving/admission.h"

#include <algorithm>

namespace diknn {

int CompletionPredictor::ClampRing(int ring) {
  return std::clamp(ring, 0, kNumRings - 1);
}

void CompletionPredictor::Observe(int ring, double latency) {
  ring = ClampRing(ring);
  if (samples_[ring] == 0) {
    ewma_[ring] = latency;
  } else {
    ewma_[ring] += alpha_ * (latency - ewma_[ring]);
  }
  ++samples_[ring];
  ++total_samples_;
}

double CompletionPredictor::Estimate(int ring) const {
  ring = ClampRing(ring);
  if (samples_[ring] > 0) return ewma_[ring];
  // Borrow the nearest ring with history (inner rings preferred on ties:
  // they under-estimate, which sheds less — the safe direction).
  for (int d = 1; d < kNumRings; ++d) {
    if (ring - d >= 0 && samples_[ring - d] > 0) return ewma_[ring - d];
    if (ring + d < kNumRings && samples_[ring + d] > 0) return ewma_[ring + d];
  }
  return 0.0;
}

bool CompletionPredictor::ShouldShed(int ring, double budget) {
  if (!CanPredict()) return false;
  if (Estimate(ring) <= budget) return false;
  if (++shed_streak_ % kProbeInterval == 0) {
    ++probes_;
    return false;  // Launch as a probe to keep the estimate fresh.
  }
  return true;
}

}  // namespace diknn
