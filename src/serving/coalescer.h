// Query coalescing: co-located in-flight queries share one itinerary.
//
// The first protocol-launched query for a (cache cell, query class) pair
// becomes the *leader*; queries arriving for the same pair while the
// leader is still in flight — and younger than the coalesce window —
// attach as *followers* instead of launching their own itinerary. When
// the leader's answer arrives at the sink, the driver fans it back out:
// each follower receives the leader's k-superset re-pruned around its own
// query point and truncated to its own k (a follower may ask for at most
// `kslack` more neighbors than the leader carries; the excess goes
// unfilled). A leader that times out or dies mid-itinerary drags its
// followers into the same outcome, so the workload outcome partition
// (issued == completed + missed + rejected + timed_out) always balances.
//
// The registry is plain deterministic bookkeeping: attach order is
// arrival order, fan-out order is attach order.

#ifndef DIKNN_SERVING_COALESCER_H_
#define DIKNN_SERVING_COALESCER_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"

namespace diknn {

class QueryCoalescer {
 public:
  /// One follower popped at leader completion.
  struct Follower {
    uint64_t ticket = 0;  ///< Caller-assigned query id.
    int k = 0;            ///< The follower's own k (truncation target).
  };

  /// `window` is the maximum leader age (s) a follower may attach to;
  /// `kslack` the per-follower k overshoot tolerance.
  QueryCoalescer(double window, int kslack)
      : window_(window), kslack_(kslack) {}

  /// Attaches `ticket` to the leader registered under `key` when one is
  /// in flight, younger than the window, and carrying k >= k - kslack.
  /// Returns the leader's ticket on success.
  std::optional<uint64_t> TryAttach(uint64_t key, uint64_t ticket, int k,
                                    SimTime now);

  /// Registers `ticket` as the leader for `key` (it is being launched on
  /// the protocol now). Replaces any previous leader for the key — the
  /// old one keeps its followers and still fans out on completion; it
  /// just stops accepting new ones.
  void RegisterLeader(uint64_t key, uint64_t ticket, int k, SimTime now);

  /// The leader resolved (completed, timed out, or died): unregisters it
  /// and returns its followers in attach order. Safe to call for tickets
  /// that never led (returns empty).
  std::vector<Follower> OnLeaderResolved(uint64_t ticket);

  /// In-flight leaders currently accepting followers.
  size_t active_leaders() const { return by_key_.size(); }

 private:
  struct Leader {
    uint64_t ticket = 0;
    int k = 0;
    SimTime launched_at = 0.0;
    std::vector<Follower> followers;
  };

  double window_;
  int kslack_;
  /// Every in-flight leader by ticket (including replaced leaders, which
  /// keep their followers until they resolve).
  std::unordered_map<uint64_t, Leader> by_ticket_;
  /// The current attach target per (cell, class) key.
  std::unordered_map<uint64_t, uint64_t> by_key_;
  /// Leader ticket -> key, so completion can clear by_key_ without a scan.
  std::unordered_map<uint64_t, uint64_t> leader_key_;
};

}  // namespace diknn

#endif  // DIKNN_SERVING_COALESCER_H_
