// Synthetic physical phenomena for sensor readings.
//
// The paper treats node *positions* as the query payload ("find k
// caribous"), but a deployed network senses something — temperature,
// gas concentration, acoustic energy. This module provides a smooth
// space-time scalar field the nodes can sample, so examples and the
// aggregate-query module operate on realistic readings: a sum of moving
// Gaussian sources over an ambient baseline, plus optional per-sample
// sensor noise.

#ifndef DIKNN_NET_SENSOR_FIELD_H_
#define DIKNN_NET_SENSOR_FIELD_H_

#include <vector>

#include "core/geometry.h"
#include "core/rng.h"
#include "sim/event_queue.h"

namespace diknn {

/// One moving Gaussian source (a heat plume, a gas leak, a herd of
/// engines...).
struct FieldSource {
  Point start;          ///< Position at t = 0.
  Point velocity;       ///< Drift (m/s); sources may leave the field.
  double amplitude = 1; ///< Peak contribution at the center.
  double sigma = 20;    ///< Spatial spread (m).
};

/// A scalar field: baseline + sum of sources + optional noise.
class SensorField {
 public:
  /// `noise_stddev`: i.i.d. Gaussian noise added per Sample() call (not
  /// part of the ground-truth Value()).
  SensorField(double baseline, std::vector<FieldSource> sources,
              double noise_stddev = 0.0, uint64_t noise_seed = 1);

  /// Ground-truth field value at position `p`, time `t`.
  double Value(const Point& p, SimTime t) const;

  /// A sensor's reading: ground truth plus noise.
  double Sample(const Point& p, SimTime t);

  /// Position of source `i` at time `t`.
  Point SourcePosition(size_t i, SimTime t) const;

  size_t num_sources() const { return sources_.size(); }
  double baseline() const { return baseline_; }

  /// Convenience: a field with `count` random sources inside `bounds`,
  /// drifting at up to `max_drift` m/s.
  static SensorField Random(const Rect& bounds, int count,
                            double amplitude, double sigma,
                            double max_drift, uint64_t seed);

 private:
  double baseline_;
  std::vector<FieldSource> sources_;
  double noise_stddev_;
  Rng noise_rng_;
};

}  // namespace diknn

#endif  // DIKNN_NET_SENSOR_FIELD_H_
