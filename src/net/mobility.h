// Node mobility models.
//
// Positions are *kinematic*: a model stores the current movement leg in
// closed form and answers PositionAt(t) for any non-decreasing sequence of
// query times, lazily advancing to new legs. No per-tick movement events
// are ever scheduled, so position lookups are exact and O(1) amortized.

#ifndef DIKNN_NET_MOBILITY_H_
#define DIKNN_NET_MOBILITY_H_

#include <functional>
#include <memory>
#include <utility>

#include "core/geometry.h"
#include "core/rng.h"
#include "sim/event_queue.h"

namespace diknn {

/// Interface for node motion. Implementations must tolerate repeated
/// queries at the same time and queries at monotonically increasing times;
/// querying into the past after advancing is undefined (the simulator's
/// clock is monotone, so this never happens in practice).
class MobilityModel {
 public:
  /// Invoked with the node's position whenever a lazy position query
  /// crosses into a new movement leg. Consumers (the channel's spatial
  /// grid) use it to refresh cached positions eagerly; it is an
  /// optimization hint only — correctness must not depend on it firing,
  /// since some models (GroupMobility) never do.
  using LegChangeObserver = std::function<void(const Point&)>;

  virtual ~MobilityModel() = default;

  /// Node position at simulation time `t`.
  virtual Point PositionAt(SimTime t) = 0;

  /// Instantaneous scalar speed (m/s) at time `t`.
  virtual double SpeedAt(SimTime t) = 0;

  /// Upper bound on the node's speed over its whole lifetime (m/s). Used
  /// by the channel's spatial grid to bound how far a node can drift from
  /// its bucketed position between refreshes.
  virtual double MaxSpeed() const = 0;

  void SetLegChangeObserver(LegChangeObserver observer) {
    leg_observer_ = std::move(observer);
  }

 protected:
  void NotifyLegChange(const Point& position) {
    if (leg_observer_) leg_observer_(position);
  }

 private:
  LegChangeObserver leg_observer_;
};

/// A node that never moves.
class StaticMobility : public MobilityModel {
 public:
  explicit StaticMobility(Point position) : position_(position) {}

  Point PositionAt(SimTime) override { return position_; }
  double SpeedAt(SimTime) override { return 0.0; }
  double MaxSpeed() const override { return 0.0; }

 private:
  Point position_;
};

/// Constant-velocity motion with reflection at the field boundary. Used in
/// tests where a predictable trajectory is needed.
class LinearMobility : public MobilityModel {
 public:
  LinearMobility(Point start, Point velocity, Rect field)
      : start_(start), velocity_(velocity), field_(field) {}

  Point PositionAt(SimTime t) override;
  double SpeedAt(SimTime) override { return velocity_.Norm(); }
  double MaxSpeed() const override { return velocity_.Norm(); }

 private:
  Point start_;
  Point velocity_;
  Rect field_;
};

/// Random waypoint (RWP) model per the paper's Section 5.1: "each sensor
/// node selects an arbitrary destination and moves to the destination at a
/// random speed ranging from 0 to mu_max. Upon arrival, the node selects a
/// new destination and walks again." No pause time.
///
/// A strictly-zero speed would freeze a node on its first leg forever (the
/// classic RWP degeneracy); speeds are drawn from [kMinSpeed, mu_max] with
/// kMinSpeed = 0.1 m/s, which matches common ns-2 practice.
class RandomWaypointMobility : public MobilityModel {
 public:
  static constexpr double kMinSpeed = 0.1;

  /// `field` bounds the waypoints; `max_speed` is the paper's mu_max.
  RandomWaypointMobility(Point start, Rect field, double max_speed, Rng rng);

  Point PositionAt(SimTime t) override;
  double SpeedAt(SimTime t) override;
  double MaxSpeed() const override {
    return max_speed_ < kMinSpeed ? 0.0 : max_speed_;
  }

  /// Maximum speed this node can ever move at.
  double max_speed() const { return max_speed_; }

 private:
  // Advances leg state so that `t` falls inside the current leg.
  // Returns true when at least one new leg was started.
  bool AdvanceTo(SimTime t);

  Rect field_;
  double max_speed_;
  Rng rng_;

  // Current leg: from `leg_start_pos_` at `leg_start_time_` toward
  // `leg_dest_` at `leg_speed_`, arriving at `leg_end_time_`.
  Point leg_start_pos_;
  Point leg_dest_;
  SimTime leg_start_time_ = 0.0;
  SimTime leg_end_time_ = 0.0;
  double leg_speed_ = 0.0;
};

/// Reference Point Group Mobility (RPGM, Hong et al., MSWiM 1999): a
/// shared group reference point travels by random waypoint, and each
/// member wanders in a small disk around it. Produces exactly the moving,
/// spatially irregular herds of the paper's Fig. 7 motivation.
class GroupMobility : public MobilityModel {
 public:
  /// The shared reference trajectory of one group. Create one per group
  /// and hand it to each member.
  using Reference = std::shared_ptr<RandomWaypointMobility>;

  /// `reference`: the group's trajectory. `start_offset`: the member's
  /// initial displacement from the reference point. `group_radius`: how
  /// far a member may roam from the reference. `member_speed`: the local
  /// wandering speed. Positions are clamped into `field`.
  GroupMobility(Reference reference, Point start_offset,
                double group_radius, double member_speed, Rect field,
                Rng rng);

  Point PositionAt(SimTime t) override;
  double SpeedAt(SimTime t) override;
  double MaxSpeed() const override {
    return reference_->MaxSpeed() + local_offset_.MaxSpeed();
  }

 private:
  Reference reference_;
  Rect field_;
  // The member's offset from the reference point evolves by its own
  // random waypoint walk inside a group_radius box around the origin.
  RandomWaypointMobility local_offset_;
};

}  // namespace diknn

#endif  // DIKNN_NET_MOBILITY_H_
