#include "net/node.h"

#include <cassert>

#include "core/logging.h"

namespace diknn {

Node::Node(NodeId id, Simulator* sim, Channel* channel,
           std::unique_ptr<MobilityModel> mobility, const NodeParams& params,
           Rng rng)
    : id_(id),
      sim_(sim),
      channel_(channel),
      mobility_(std::move(mobility)),
      neighbors_(params.neighbor_timeout),
      energy_(params.energy),
      rng_(rng),
      mac_(this, channel, sim, params.mac, rng_.Fork()) {
  // Keep the channel's spatial grid fresh: whenever a lazy position query
  // starts a new movement leg, re-bucket this node at the leg position.
  if (channel_ != nullptr) {
    mobility_->SetLegChangeObserver(
        [this](const Point& pos) { channel_->RebucketNode(this, pos); });
  }
}

void Node::PinPosition(const Point& p) {
  position_pinned_ = true;
  pinned_position_ = p;
  if (channel_ != nullptr) channel_->RebucketNode(this, p);
}

void Node::ClearPinnedPosition() {
  if (!position_pinned_) return;
  position_pinned_ = false;
  if (channel_ != nullptr) channel_->RebucketNode(this, Position());
}

void Node::RegisterHandler(MessageType type, Handler handler) {
  const size_t index = static_cast<size_t>(type);
  assert(index < kMessageTypeSpan && "MessageType outside dispatch table");
  handlers_[index] = std::move(handler);
}

void Node::SendUnicast(NodeId dst, MessageType type,
                       std::shared_ptr<const Message> payload,
                       size_t body_bytes, EnergyCategory category,
                       Mac::SendCallback callback, TraceContext trace) {
  if (!alive_) {
    if (callback) callback(false);
    return;
  }
  Packet p;
  p.dst = dst;
  p.type = type;
  p.payload = std::move(payload);
  p.size_bytes = body_bytes + kMacHeaderBytes;
  p.trace = trace;
  mac_.Send(std::move(p), category, std::move(callback));
}

void Node::SendBroadcast(MessageType type,
                         std::shared_ptr<const Message> payload,
                         size_t body_bytes, EnergyCategory category,
                         Mac::SendCallback callback, TraceContext trace) {
  if (!alive_) {
    if (callback) callback(false);
    return;
  }
  Packet p;
  p.dst = kBroadcastId;
  p.type = type;
  p.payload = std::move(payload);
  p.size_bytes = body_bytes + kMacHeaderBytes;
  p.trace = trace;
  mac_.Send(std::move(p), category, std::move(callback));
}

void Node::HandlePhyReceive(const Packet& packet) {
  if (!alive_) return;
  if (mac_.FilterReceive(packet)) return;

  const size_t index = static_cast<size_t>(packet.type);
  if (index >= kMessageTypeSpan || !handlers_[index]) {
    DIKNN_LOG(kDebug) << "node " << id_ << ": no handler for "
                      << MessageTypeName(packet.type);
    return;
  }
  handlers_[index](packet);
}

}  // namespace diknn
