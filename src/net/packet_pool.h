// Pooled storage for the packet plane: message payloads and in-flight
// frame state, recycled so the steady state performs zero heap
// allocations per frame (docs/PACKET_PLANE.md).
//
// Two pools with different shapes:
//
//  * MessagePool — allocation recycler behind `std::shared_ptr<const
//    Message>` payloads. `Make<T>(args...)` is a drop-in for
//    `std::make_shared<T>(args...)`: one block holds the control block
//    and the object, drawn from a thread-local size-class freelist, so
//    after warmup a beacon / MAC ACK / probe costs no allocation at all.
//    `MakeReusable<T>()` additionally keeps the *object* alive across
//    uses for types that own buffers (vectors of candidate entries,
//    itinerary info lists): on release the deleter calls `T::Reuse()` —
//    which must clear contents but keep capacity — and parks the object
//    in a per-type cache instead of destroying it.
//
//    Thread model: pools are thread-local because each simulation run is
//    confined to one worker thread (the experiment runner parallelizes
//    across runs, never within one). A payload released on a different
//    thread is simply recycled into that thread's cache — safe, just not
//    counted against the originating thread's live tally.
//
//  * FramePool<T> — a generation-tagged slab of frame slots, mirroring
//    the EventQueue's event pool (sim/event_queue.h). The channel parks a
//    frame's Packet, per-receiver corruption flags, and delivery batch in
//    a slot and schedules events that capture only {channel, handle} —
//    small enough for SmallFn's inline storage, so scheduling a delivery
//    no longer heap-allocates a closure. Stale handles (slot reused after
//    release) are detected by the generation tag and resolve to nullptr.

#ifndef DIKNN_NET_PACKET_POOL_H_
#define DIKNN_NET_PACKET_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/alloc_probe.h"

namespace diknn {

/// Per-thread pool traffic counters, exposed for tests and the metrics
/// registry. `live` counts checked-out units (blocks + reusable objects);
/// it returns to its baseline when every frame and payload has drained.
struct MessagePoolStats {
  uint64_t live = 0;
  uint64_t fresh_allocations = 0;  ///< Served by a real heap allocation.
  uint64_t reuses = 0;             ///< Served from a freelist / cache.
};

namespace packet_pool_detail {

/// Acquires a block of at least `size` bytes from the calling thread's
/// size-class freelist (falling back to the heap on a cold class).
void* AcquireBlock(size_t size);

/// Returns a block to the calling thread's freelist. `size` must be the
/// size passed to AcquireBlock.
void ReleaseBlock(void* p, size_t size);

MessagePoolStats& ThreadStats();

/// Counters for reusable-object caches (see MessagePool::MakeReusable).
void NoteReusableAcquire(bool fresh);
void NoteReusableRelease();

/// Frees every cached block on the calling thread (diagnostics; caches
/// normally live for the thread's lifetime).
void TrimThreadCaches();

/// STL allocator over the thread-local block recycler. Single-element
/// allocations (the shared_ptr control-block path) recycle; array
/// allocations fall through to the heap.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT: converting ctor.

  T* allocate(size_t n) {
    if (n == 1) return static_cast<T*>(AcquireBlock(sizeof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) {
    if (n == 1) {
      ReleaseBlock(p, sizeof(T));
    } else {
      ::operator delete(p);
    }
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const {
    return true;
  }
};

/// Thread-local cache of live `T` objects for MakeReusable. Objects keep
/// their internal buffer capacity between uses; leftover objects are
/// destroyed at thread exit.
template <typename T>
class ReusableCache {
 public:
  static T* Acquire() {
    auto& items = Store().items;
    if (items.empty()) {
      NoteReusableAcquire(/*fresh=*/true);
      // A cold-cache object is pool capacity (it lives in the cache for
      // the rest of the thread), not a per-operation transient; keep it
      // off the subsystem allocation counters.
      AllocScopePause capacity;
      return new T();
    }
    NoteReusableAcquire(/*fresh=*/false);
    T* obj = items.back();
    items.pop_back();
    return obj;
  }

  static void Release(T* obj) {
    NoteReusableRelease();
    AllocScopePause capacity;  // Cache list growth only.
    Store().items.push_back(obj);
  }

 private:
  struct Cache {
    std::vector<T*> items;
    ~Cache() {
      for (T* p : items) delete p;
    }
  };
  static Cache& Store() {
    thread_local Cache cache;
    return cache;
  }
};

}  // namespace packet_pool_detail

/// Facade over the thread-local payload recycler.
class MessagePool {
 public:
  /// Drop-in replacement for std::make_shared<T>(args...): object and
  /// control block share one recycled block.
  template <typename T, typename... Args>
  static std::shared_ptr<T> Make(Args&&... args) {
    return std::allocate_shared<T>(packet_pool_detail::PoolAllocator<T>{},
                                   std::forward<Args>(args)...);
  }

  /// Pooled payload whose *object* survives between uses. Requires
  /// `void T::Reuse()` clearing contents while retaining buffer capacity.
  /// The returned object is in its post-Reuse state (or freshly
  /// default-constructed); the caller fills the fields.
  template <typename T>
  static std::shared_ptr<T> MakeReusable() {
    using Cache = packet_pool_detail::ReusableCache<T>;
    T* obj = Cache::Acquire();
    return std::shared_ptr<T>(
        obj,
        [](T* p) {
          p->Reuse();
          Cache::Release(p);
        },
        packet_pool_detail::PoolAllocator<T>{});
  }

  /// This thread's pool counters.
  static const MessagePoolStats& ThreadStats() {
    return packet_pool_detail::ThreadStats();
  }

  /// Units currently checked out on this thread.
  static uint64_t ThreadLive() { return ThreadStats().live; }

  /// Resets the traffic counters (not `live`) on this thread.
  static void ResetThreadStats();
};

/// Generation-tagged slab of reusable `T` slots addressed by opaque
/// handles. `T` must be default-constructible and provide `void Reuse()`
/// (clear contents, keep capacity). Pointers returned by Get() are
/// invalidated by the next Acquire() (the slab may grow); re-resolve the
/// handle after any acquire.
template <typename T>
class FramePool {
 public:
  /// 0 is never a valid handle. Layout: (generation << 32) | (slot + 1).
  using Handle = uint64_t;
  static constexpr Handle kNullHandle = 0;

  /// Checks out a slot (recycling a released one when available) and
  /// returns its handle. The slot's value is default / post-Reuse state.
  Handle Acquire() {
    uint32_t index;
    if (free_head_ != kNilIndex) {
      index = free_head_;
      free_head_ = slots_[index].next_free;
      ++stats_.reuses;
    } else {
      // Slab growth is pool capacity, tracked by fresh_allocations; it is
      // not charged to the acquiring subsystem's transient counters.
      AllocScopePause capacity;
      index = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
      ++stats_.fresh_allocations;
    }
    Slot& slot = slots_[index];
    slot.live = true;
    ++live_;
    return (static_cast<uint64_t>(slot.gen) << 32) | (index + 1u);
  }

  /// Resolves `handle`; nullptr if null, released, or recycled (stale
  /// generation).
  T* Get(Handle handle) {
    const uint32_t index = IndexOf(handle);
    if (index == kNilIndex) return nullptr;
    Slot& slot = slots_[index];
    if (!slot.live || slot.gen != static_cast<uint32_t>(handle >> 32)) {
      return nullptr;
    }
    return &slot.value;
  }

  /// Returns the slot to the freelist; its value is Reuse()d and its
  /// generation bumped so outstanding handles go stale. No-op when the
  /// handle is already stale.
  void Release(Handle handle) {
    const uint32_t index = IndexOf(handle);
    if (index == kNilIndex) return;
    Slot& slot = slots_[index];
    if (!slot.live || slot.gen != static_cast<uint32_t>(handle >> 32)) {
      return;
    }
    slot.value.Reuse();
    ++slot.gen;
    slot.live = false;
    slot.next_free = free_head_;
    free_head_ = index;
    --live_;
  }

  size_t live_count() const { return live_; }
  size_t capacity() const { return slots_.size(); }
  const MessagePoolStats& stats() const { return stats_; }

 private:
  static constexpr uint32_t kNilIndex = 0xffffffffu;

  struct Slot {
    T value;
    uint32_t gen = 0;
    uint32_t next_free = kNilIndex;
    bool live = false;
  };

  uint32_t IndexOf(Handle handle) const {
    if (handle == kNullHandle) return kNilIndex;
    const uint32_t index = static_cast<uint32_t>(handle & 0xffffffffu) - 1u;
    return index < slots_.size() ? index : kNilIndex;
  }

  std::vector<Slot> slots_;
  uint32_t free_head_ = kNilIndex;
  size_t live_ = 0;
  MessagePoolStats stats_;  // `live` unused here; see live_.
};

}  // namespace diknn

#endif  // DIKNN_NET_PACKET_POOL_H_
