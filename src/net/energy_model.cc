#include "net/energy_model.h"

namespace diknn {

void EnergyMeter::ChargeTx(size_t bytes, double range_m, EnergyCategory cat) {
  const double bits = static_cast<double>(bytes) * 8.0;
  const double joules =
      params_.e_elec_j_per_bit * bits +
      params_.eps_amp_j_per_bit_m2 * bits * range_m * range_m;
  by_category_[static_cast<int>(cat)] += joules;
}

void EnergyMeter::ChargeRx(size_t bytes, EnergyCategory cat) {
  const double bits = static_cast<double>(bytes) * 8.0;
  by_category_[static_cast<int>(cat)] += params_.e_elec_j_per_bit * bits;
}

double EnergyMeter::TotalJoules() const {
  double total = 0.0;
  for (double j : by_category_) total += j;
  return total;
}

void EnergyMeter::Reset() { by_category_.fill(0.0); }

}  // namespace diknn
