// Packet framing for the simulated wireless network.
//
// Payloads are ordinary C++ objects passed by shared_ptr between simulated
// nodes; the over-the-air cost is modeled separately by `size_bytes`, which
// every protocol sets to the byte count its real message would occupy
// (header + body). The channel charges time and energy from `size_bytes`.

#ifndef DIKNN_NET_PACKET_H_
#define DIKNN_NET_PACKET_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/energy_model.h"
#include "obs/trace_context.h"

namespace diknn {

/// Node identifier. Ids are dense indices assigned by the Network.
using NodeId = int;

/// Destination id used for local one-hop broadcasts.
inline constexpr NodeId kBroadcastId = -1;

/// Invalid / unset node id.
inline constexpr NodeId kInvalidNodeId = -2;

/// Base class for protocol message bodies. Protocols subclass this and
/// downcast on receive using the packet's `type` tag.
struct Message {
  virtual ~Message() = default;
};

/// Message type tags. Grouped by subsystem so dispatch tables stay readable.
enum class MessageType : uint16_t {
  // net/
  kBeacon = 1,
  kMacAck = 2,

  // routing/ (GPSR)
  kGeoRouted = 10,

  // knn/ (DIKNN)
  kDiknnQuery = 19,  ///< Geo-routed query bootstrap (sink -> home node).
  kDiknnProbe = 20,
  kDiknnDataReply = 21,
  kDiknnForward = 22,
  kDiknnRendezvous = 23,
  kDiknnResult = 24,

  // baselines/ KPT
  kKptQuery = 29,  ///< Geo-routed query bootstrap (sink -> home node).
  kKptTreeBuild = 30,
  kKptTreeAck = 31,
  kKptAggregate = 32,
  kKptResult = 33,

  // baselines/ Peer-tree
  kPeerRegister = 40,
  kPeerQuery = 41,
  kPeerProbe = 42,
  kPeerReply = 43,
  kPeerResult = 44,

  // baselines/ flooding
  kFloodQuery = 50,
  kFloodReply = 51,

  // knn/ itinerary window queries
  kWindowQuery = 60,   ///< Geo-routed bootstrap (sink -> window entry).
  kWindowProbe = 61,
  kWindowReply = 62,
  kWindowForward = 63,
  kWindowResult = 64,

  // baselines/ centralized index
  kCentralUpdate = 70,
  kCentralQuery = 71,
  kCentralResult = 72,

  // knn/ itinerary aggregate queries
  kAggQuery = 80,
  kAggProbe = 81,
  kAggReply = 82,
  kAggForward = 83,
  kAggResult = 84,
};

/// One past the largest MessageType value. Dispatch tables (per-node
/// protocol handlers, GPSR delivery handlers) are flat arrays indexed by
/// the type tag; bump this when adding message types past kAggResult.
inline constexpr size_t kMessageTypeSpan =
    static_cast<size_t>(MessageType::kAggResult) + 1;

/// Returns a short human-readable tag name for traces.
const char* MessageTypeName(MessageType type);

/// One over-the-air frame.
struct Packet {
  NodeId src = kInvalidNodeId;       ///< Transmitting node.
  NodeId dst = kBroadcastId;         ///< Receiver id or kBroadcastId.
  MessageType type = MessageType::kBeacon;
  size_t size_bytes = 0;             ///< Modeled over-the-air size.
  std::shared_ptr<const Message> payload;
  uint64_t uid = 0;                  ///< Unique per logical frame; retries
                                     ///  reuse it (enables dedup + ACKs).
  /// Accounting bucket: carried as simulation metadata so receivers charge
  /// reception to the same bucket the sender charged transmission to.
  EnergyCategory category = EnergyCategory::kQuery;
  /// Trace attribution: which traced query (and span) this frame serves.
  /// Simulation metadata like `category` — never counted in `size_bytes`,
  /// never consulted by protocol logic.
  TraceContext trace;

  bool IsBroadcast() const { return dst == kBroadcastId; }
};

/// Byte-size constants shared by the protocols, roughly matching 802.15.4
/// frame layouts. The paper's "query response size of each sensor node is
/// 10 bytes" maps to kQueryResponseBytes.
inline constexpr size_t kMacHeaderBytes = 11;    ///< 802.15.4 MHR + FCS.
inline constexpr size_t kPositionBytes = 8;      ///< Two 4-byte coords.
inline constexpr size_t kNodeIdBytes = 2;
inline constexpr size_t kQueryResponseBytes = 10;

}  // namespace diknn

#endif  // DIKNN_NET_PACKET_H_
