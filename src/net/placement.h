// Initial node placement generators.
//
// The paper's main experiments place nodes uniformly at random (Section
// 5.1); the Fig. 7 demonstration uses a spatially irregular real-world
// distribution (caribou herds), which we substitute with clustered
// synthetic fields (see DESIGN.md).

#ifndef DIKNN_NET_PLACEMENT_H_
#define DIKNN_NET_PLACEMENT_H_

#include <vector>

#include "core/geometry.h"
#include "core/rng.h"

namespace diknn {

/// Placement strategy selector.
enum class PlacementKind {
  kUniform,    ///< i.i.d. uniform over the field (paper default).
  kGrid,       ///< Regular grid with small jitter; used in tests.
  kClustered,  ///< Gaussian clusters + uniform background (Fig. 7 stand-in).
};

/// Parameters for clustered (spatially irregular) placement.
struct ClusterParams {
  int num_clusters = 5;
  /// Cluster spread as a fraction of the field's shorter side.
  double sigma_fraction = 0.08;
  /// Fraction of nodes placed uniformly instead of in clusters.
  double background_fraction = 0.15;
};

/// Generates `count` initial positions inside `field`.
std::vector<Point> GeneratePositions(PlacementKind kind, int count,
                                     const Rect& field, Rng& rng,
                                     const ClusterParams& clusters = {});

/// Uniform i.i.d. positions.
std::vector<Point> UniformPositions(int count, const Rect& field, Rng& rng);

/// Near-regular grid: ceil(sqrt(count))^2 cells, one node per cell (first
/// `count` cells), jittered by `jitter_fraction` of the cell size.
std::vector<Point> GridPositions(int count, const Rect& field, Rng& rng,
                                 double jitter_fraction = 0.1);

/// Gaussian clusters with a uniform background component. Cluster centers
/// are themselves uniform; samples falling outside the field are clamped
/// to it (mass piles up at dense borders exactly like truncated herds).
std::vector<Point> ClusteredPositions(int count, const Rect& field, Rng& rng,
                                      const ClusterParams& params);

}  // namespace diknn

#endif  // DIKNN_NET_PLACEMENT_H_
