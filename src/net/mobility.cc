#include "net/mobility.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace diknn {

Point LinearMobility::PositionAt(SimTime t) {
  // Reflecting boundaries: fold the unbounded position into the field by
  // mirroring. Handles arbitrarily many reflections in O(1) via fmod.
  auto reflect = [](double v, double lo, double hi) {
    const double span = hi - lo;
    if (span <= 0.0) return lo;
    double u = std::fmod(v - lo, 2.0 * span);
    if (u < 0.0) u += 2.0 * span;
    return lo + (u <= span ? u : 2.0 * span - u);
  };
  const Point raw = start_ + velocity_ * t;
  return {reflect(raw.x, field_.min.x, field_.max.x),
          reflect(raw.y, field_.min.y, field_.max.y)};
}

RandomWaypointMobility::RandomWaypointMobility(Point start, Rect field,
                                               double max_speed, Rng rng)
    : field_(field),
      max_speed_(max_speed),
      rng_(rng),
      leg_start_pos_(start),
      leg_dest_(start) {
  assert(max_speed_ >= 0.0);
  // Degenerate mobility (mu_max ~ 0) collapses to a static node.
  if (max_speed_ < kMinSpeed) {
    leg_end_time_ = std::numeric_limits<SimTime>::infinity();
    leg_speed_ = 0.0;
    return;
  }
  leg_end_time_ = 0.0;  // Forces a fresh leg on the first query.
}

bool RandomWaypointMobility::AdvanceTo(SimTime t) {
  bool advanced = false;
  while (t >= leg_end_time_) {
    advanced = true;
    // Arrived: start a new leg from the previous destination.
    leg_start_pos_ = leg_dest_;
    leg_start_time_ = leg_end_time_;
    leg_dest_ = rng_.PointInRect(field_);
    leg_speed_ = rng_.Uniform(kMinSpeed, max_speed_);
    const double dist = Distance(leg_start_pos_, leg_dest_);
    const double duration = dist / leg_speed_;
    // Guard against a zero-length leg looping forever.
    leg_end_time_ = leg_start_time_ + std::max(duration, 1e-9);
  }
  return advanced;
}

Point RandomWaypointMobility::PositionAt(SimTime t) {
  const bool new_leg = t >= leg_end_time_ && AdvanceTo(t);
  Point pos;
  if (t <= leg_start_time_) {
    pos = leg_start_pos_;
  } else {
    const double frac =
        (t - leg_start_time_) / (leg_end_time_ - leg_start_time_);
    pos = Lerp(leg_start_pos_, leg_dest_, std::min(frac, 1.0));
  }
  if (new_leg) NotifyLegChange(pos);
  return pos;
}

double RandomWaypointMobility::SpeedAt(SimTime t) {
  if (t >= leg_end_time_) AdvanceTo(t);
  return leg_speed_;
}

GroupMobility::GroupMobility(Reference reference, Point start_offset,
                             double group_radius, double member_speed,
                             Rect field, Rng rng)
    : reference_(std::move(reference)),
      field_(field),
      local_offset_(start_offset,
                    Rect{{-group_radius, -group_radius},
                         {group_radius, group_radius}},
                    member_speed, rng) {}

Point GroupMobility::PositionAt(SimTime t) {
  const Point ref = reference_->PositionAt(t);
  const Point offset = local_offset_.PositionAt(t);
  return field_.Clamp(ref + offset);
}

double GroupMobility::SpeedAt(SimTime t) {
  // Upper bound: the reference's speed plus the local wandering speed.
  return reference_->SpeedAt(t) + local_offset_.SpeedAt(t);
}

}  // namespace diknn
