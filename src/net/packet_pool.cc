#include "net/packet_pool.h"

#include <array>
#include <new>

namespace diknn {
namespace packet_pool_detail {
namespace {

// Size classes in 64-byte granules. Message payloads plus their shared_ptr
// control blocks are small (a BeaconMessage block is under 128 bytes; a
// GeoRoutedMessage block under 256); anything above the largest class is
// rare enough to pay the heap price.
constexpr size_t kGranule = 64;
constexpr size_t kNumClasses = 16;  // Up to 1 KiB.

struct ThreadCaches {
  std::array<std::vector<void*>, kNumClasses> free_lists;
  MessagePoolStats stats;

  ~ThreadCaches() {
    for (auto& list : free_lists) {
      for (void* p : list) ::operator delete(p);
    }
  }
};

ThreadCaches& Caches() {
  thread_local ThreadCaches caches;
  return caches;
}

// Class index for `size`, or kNumClasses when unpooled.
inline size_t ClassOf(size_t size) {
  return (size + kGranule - 1) / kGranule - 1;
}

}  // namespace

void* AcquireBlock(size_t size) {
  ThreadCaches& caches = Caches();
  ++caches.stats.live;
  const size_t cls = ClassOf(size);
  if (cls < kNumClasses) {
    auto& list = caches.free_lists[cls];
    if (!list.empty()) {
      ++caches.stats.reuses;
      void* p = list.back();
      list.pop_back();
      return p;
    }
    // A cold size class mints pool capacity: the block recycles through
    // the freelist for the rest of the thread's life. fresh_allocations
    // tracks it; the caller's transient counters do not.
    ++caches.stats.fresh_allocations;
    AllocScopePause capacity;
    return ::operator new((cls + 1) * kGranule);
  }
  ++caches.stats.fresh_allocations;
  return ::operator new(size);
}

void ReleaseBlock(void* p, size_t size) {
  ThreadCaches& caches = Caches();
  --caches.stats.live;
  const size_t cls = ClassOf(size);
  if (cls < kNumClasses) {
    AllocScopePause capacity;  // Freelist vector growth only.
    caches.free_lists[cls].push_back(p);
    return;
  }
  ::operator delete(p);
}

MessagePoolStats& ThreadStats() { return Caches().stats; }

void NoteReusableAcquire(bool fresh) {
  MessagePoolStats& stats = Caches().stats;
  ++stats.live;
  if (fresh) {
    ++stats.fresh_allocations;
  } else {
    ++stats.reuses;
  }
}

void NoteReusableRelease() { --Caches().stats.live; }

void TrimThreadCaches() {
  ThreadCaches& caches = Caches();
  for (auto& list : caches.free_lists) {
    for (void* p : list) ::operator delete(p);
    list.clear();
  }
}

}  // namespace packet_pool_detail

void MessagePool::ResetThreadStats() {
  MessagePoolStats& stats = packet_pool_detail::ThreadStats();
  stats.fresh_allocations = 0;
  stats.reuses = 0;
}

}  // namespace diknn
