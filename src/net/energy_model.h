// First-order radio energy model (Heinzelman et al., HICSS 2000), the
// standard WSN cost model:
//
//   E_tx(b, d) = E_elec * b + eps_amp * b * d^2
//   E_rx(b)    = E_elec * b
//
// where b is the bit count and d the transmission range. The paper reports
// Joules per 100-second run; the shape of its energy curves depends only on
// traffic counts, which this model charges faithfully.
//
// Energy is accounted per *category* so experiments can separate the cost
// the paper plots (query processing + index maintenance) from the beacon
// baseline that every protocol pays identically.

#ifndef DIKNN_NET_ENERGY_MODEL_H_
#define DIKNN_NET_ENERGY_MODEL_H_

#include <array>
#include <cstddef>

namespace diknn {

/// What a transmission was for; used to attribute energy.
enum class EnergyCategory : int {
  kBeacon = 0,       ///< Periodic location beacons (common to all schemes).
  kMaintenance = 1,  ///< Index upkeep (Peer-tree registrations, etc.).
  kQuery = 2,        ///< Query dissemination, collection and result return.
  kCount = 3,
};

/// Radio parameters. Defaults follow the first-order model's canonical
/// values for short-range 802.15.4-class radios.
struct EnergyParams {
  double e_elec_j_per_bit = 50e-9;      ///< Electronics energy per bit.
  double eps_amp_j_per_bit_m2 = 100e-12;///< Amplifier energy per bit*m^2.
};

/// Per-node energy meter.
class EnergyMeter {
 public:
  explicit EnergyMeter(EnergyParams params = {}) : params_(params) {}

  /// Charges a transmission of `bytes` at range `range_m`.
  void ChargeTx(size_t bytes, double range_m, EnergyCategory cat);

  /// Charges a reception of `bytes`.
  void ChargeRx(size_t bytes, EnergyCategory cat);

  /// Total Joules consumed across all categories.
  double TotalJoules() const;

  /// Joules consumed in one category.
  double Joules(EnergyCategory cat) const {
    return by_category_[static_cast<int>(cat)];
  }

  /// Resets all counters to zero.
  void Reset();

 private:
  EnergyParams params_;
  std::array<double, static_cast<int>(EnergyCategory::kCount)> by_category_{};
};

}  // namespace diknn

#endif  // DIKNN_NET_ENERGY_MODEL_H_
