#include "net/beacon.h"

#include <memory>

namespace diknn {

BeaconService::BeaconService(Simulator* sim, std::vector<Node*> nodes,
                             SimTime interval, Rng rng)
    : sim_(sim), nodes_(std::move(nodes)), interval_(interval), rng_(rng) {}

void BeaconService::Start() {
  for (Node* node : nodes_) {
    node->RegisterHandler(MessageType::kBeacon, [node](const Packet& p) {
      const auto* beacon =
          static_cast<const BeaconMessage*>(p.payload.get());
      node->neighbors().Update(beacon->id, beacon->position, beacon->speed,
                               node->sim()->Now());
    });
  }
  for (Node* node : nodes_) {
    const SimTime phase = rng_.Uniform(0.0, interval_);
    sim_->SchedulePeriodic(phase, interval_, [this, node]() {
      if (node->alive()) SendBeacon(node);
      return true;  // Beaconing never stops on its own.
    });
  }
}

void BeaconService::SendBeacon(Node* node) {
  auto msg = std::make_shared<BeaconMessage>();
  msg->id = node->id();
  msg->position = node->Position();
  msg->speed = node->Speed();
  node->SendBroadcast(MessageType::kBeacon, std::move(msg), kBeaconBodyBytes,
                      EnergyCategory::kBeacon);
}

}  // namespace diknn
