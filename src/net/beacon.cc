#include "net/beacon.h"

#include <algorithm>
#include <memory>

#include "core/alloc_probe.h"
#include "net/packet_pool.h"

namespace diknn {

BeaconService::BeaconService(Simulator* sim, std::vector<Node*> nodes,
                             SimTime interval, Rng rng)
    : sim_(sim), nodes_(std::move(nodes)), interval_(interval), rng_(rng) {}

void BeaconService::Start() {
  for (Node* node : nodes_) {
    node->RegisterHandler(MessageType::kBeacon, [node](const Packet& p) {
      const auto* beacon =
          static_cast<const BeaconMessage*>(p.payload.get());
      node->neighbors().Update(beacon->id, beacon->position, beacon->speed,
                               node->sim()->Now());
    });
  }

  // Draw one phase per node (in node order, matching the historical RNG
  // stream) and sort the sweep by first-fire time. Stable sort keeps
  // node order for equal phases — the FIFO order separate events would
  // have had.
  schedule_.clear();
  schedule_.reserve(nodes_.size());
  const SimTime now = sim_->Now();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const SimTime phase = rng_.Uniform(0.0, interval_);
    schedule_.push_back(
        SweepEntry{now + phase, static_cast<uint32_t>(i)});
  }
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const SweepEntry& a, const SweepEntry& b) {
                     return a.next_time < b.next_time;
                   });
  cursor_ = 0;
  if (!schedule_.empty()) ScheduleSweep();
}

void BeaconService::ScheduleSweep() {
  sim_->ScheduleAt(schedule_[cursor_].next_time, [this]() { FireSweep(); });
}

void BeaconService::FireSweep() {
  // Beaconing is packet-plane work: attribute its allocations to the
  // channel's net scope (pooled payloads make the steady state free).
  Channel* channel =
      nodes_.empty() ? nullptr : nodes_.front()->channel();
  AllocScope alloc_scope(channel != nullptr ? &channel->net_allocs()
                                            : nullptr);
  // Send every beacon due at exactly this timestamp (ties only arise
  // when two accumulated phase series collide bit-for-bit; they then
  // fire in sweep order, which is the order separate events would have
  // fired in). Dead nodes stay in the rotation — like the historical
  // per-node periodic, beaconing resumes if a node is revived.
  const SimTime t = schedule_[cursor_].next_time;
  do {
    SweepEntry& entry = schedule_[cursor_];
    Node* node = nodes_[entry.node_index];
    if (node->alive()) SendBeacon(node);
    entry.next_time += interval_;
    cursor_ = cursor_ + 1 < schedule_.size() ? cursor_ + 1 : 0;
  } while (cursor_ != 0 && schedule_[cursor_].next_time == t);
  ScheduleSweep();
}

void BeaconService::SendBeacon(Node* node) {
  auto msg = MessagePool::Make<BeaconMessage>();
  msg->id = node->id();
  msg->position = node->Position();
  msg->speed = node->Speed();
  node->SendBroadcast(MessageType::kBeacon, std::move(msg), kBeaconBodyBytes,
                      EnergyCategory::kBeacon);
}

}  // namespace diknn
