// Shared broadcast wireless channel with per-receiver collision detection.
//
// Model: a frame transmitted at time t occupies the air for
// duration = bytes * 8 / bit_rate, and is heard by every live node within
// `radio_range_m` of the sender. A receiver with two temporally overlapping
// audible frames corrupts both (no capture by default). Independent random
// loss models fading and interference beyond collisions. These are exactly
// the effects the paper's evaluation leans on: contention between
// concurrent itinerary traversals, KPT's collision-driven energy spike at
// large k, and accuracy degradation from lost packets.
//
// Scalability: delivery and carrier sensing are served from a uniform
// spatial hash grid rather than a full scan over all attached nodes, so
// per-frame cost is proportional to the local neighborhood instead of the
// network size. Cell size is `radio_range_m` plus a drift margin
// (max node speed x refresh interval), which makes a 3x3 cell
// neighborhood a conservative superset of every node within radio range
// even though bucketed positions lag true (kinematic) positions by up to
// one refresh interval. Candidates are processed in ascending node-id
// order before any channel RNG draw, so grid-indexed runs are
// bit-identical to the brute-force scan (`use_spatial_grid = false`).

#ifndef DIKNN_NET_CHANNEL_H_
#define DIKNN_NET_CHANNEL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/alloc_probe.h"
#include "core/geometry.h"
#include "core/rng.h"
#include "net/energy_model.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"

namespace diknn {

class Node;
class Tracer;

/// Physical-layer parameters.
struct ChannelParams {
  double radio_range_m = 20.0;  ///< Paper: r = 20 m.
  double bit_rate_bps = 250e3;  ///< Paper: 250 kbps LR-WPAN channel.
  double loss_rate = 0.0;       ///< Per-receiver independent drop prob.
  bool capture = false;         ///< If true, the earlier frame survives a
                                ///  collision when it is already mid-air.
  /// Serve delivery and carrier sensing from the spatial hash grid. The
  /// brute-force O(N) scan is kept for equivalence testing; both paths
  /// produce bit-identical outcomes for the same seed.
  bool use_spatial_grid = true;
  /// How often (simulated seconds) every node is re-bucketed into the
  /// grid. Larger values mean fewer refresh sweeps but a wider drift
  /// margin (and hence larger cells). Leg-change notifications from the
  /// mobility layer re-bucket nodes eagerly in between.
  double grid_refresh_interval_s = 0.25;
};

/// Channel traffic counters, exposed for tests and benchmarks.
struct ChannelStats {
  uint64_t frames_sent = 0;
  uint64_t receptions_attempted = 0;
  uint64_t receptions_delivered = 0;
  uint64_t receptions_collided = 0;
  uint64_t receptions_lost = 0;  ///< Random loss (non-collision).
  /// Receiver candidates examined across all transmissions (range checks
  /// performed). The grid's win over the brute-force scan shows up here.
  uint64_t candidates_scanned = 0;
  /// Summed on-air time of every transmitted frame (seconds). Divided by
  /// elapsed sim time this is the medium's offered-load share — the
  /// airtime-utilization series of the flight recorder.
  double airtime_s = 0.0;
};

/// The shared medium. One instance per Network; all nodes attach to it.
class Channel {
 public:
  Channel(Simulator* sim, ChannelParams params, Rng rng);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Registers a node. Nodes must outlive the channel's pending events;
  /// the Network guarantees this by owning both.
  void Attach(Node* node);

  /// Starts transmitting `packet` from `sender` now. The MAC layer is
  /// responsible for carrier sensing before calling this. Transmission
  /// energy is charged to `sender` immediately; reception energy to each
  /// audible receiver when its reception completes. Both are attributed to
  /// `packet.category`.
  void Transmit(Node* sender, const Packet& packet);

  /// Carrier sense: true if any ongoing transmission is audible at `pos`.
  bool IsBusyAt(const Point& pos) const;

  /// Re-buckets `node` at `position` in the spatial grid. Invoked by the
  /// mobility layer's leg-change hook; harmless no-op for unattached
  /// nodes or when the grid is disabled / not yet built.
  void RebucketNode(Node* node, const Point& position);

  /// Air time of a frame of `bytes` (including MAC header) at the
  /// configured bit rate.
  double FrameDuration(size_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / params_.bit_rate_bps;
  }

  const ChannelParams& params() const { return params_; }
  const ChannelStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ChannelStats{}; }

  /// Grid cell edge length (m); 0 until the grid is first built. Exposed
  /// for tests.
  double grid_cell_size() const { return cell_size_; }

  /// Observers invoked at the start of every transmission, with the
  /// sender id and its position. Any number may be attached (the packet
  /// TraceRecorder and the query Tracer coexist); each attachment returns
  /// an id for detaching. Observers must not transmit re-entrantly.
  using TransmitObserver =
      std::function<void(const Packet&, NodeId sender, Point position)>;
  using ObserverId = uint64_t;
  ObserverId AddTransmitObserver(TransmitObserver observer) {
    const ObserverId id = next_observer_id_++;
    transmit_observers_.emplace_back(id, std::move(observer));
    return id;
  }
  void RemoveTransmitObserver(ObserverId id) {
    std::erase_if(transmit_observers_,
                  [id](const auto& entry) { return entry.first == id; });
  }

  /// Query tracer for frame-level attribution (collisions, losses, fault
  /// hits on traced frames). Not owned; pass nullptr to detach. The
  /// tracer records only — it cannot perturb delivery.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  /// Fault-injection verdict for one frame, decided before it goes on the
  /// air. A dropped frame still costs transmit energy and occupies the air
  /// for carrier sensing — the sender *did* transmit — but no receiver
  /// hears it (modeling deep fades and jamming, and in particular forced
  /// MAC ACK loss). A duplicated frame is re-aired once, immediately after
  /// the original finishes, with the same uid (modeling a spurious
  /// retransmission); the receiver MAC ACKs it again and suppresses the
  /// second protocol delivery, exactly the lost-ACK fork the protocols
  /// must survive.
  struct FrameFault {
    bool drop = false;
    bool duplicate = false;
  };

  /// Hook consulted at the start of every Transmit. Replayed duplicates
  /// requested by the hook are not themselves subject to it. The hook
  /// must outlive the channel's pending events (the FaultInjector owns it
  /// for the whole run). Pass nullptr to detach.
  using FaultHook = std::function<FrameFault(const Packet&, NodeId sender)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Frames currently parked in the in-flight pool (un-fired delivery or
  /// duplicate-replay events). Returns to zero when the air drains.
  size_t frames_in_flight() const { return frames_.live_count(); }

  /// In-flight frame pool traffic (slab growth vs. slot reuse).
  const MessagePoolStats& frame_pool_stats() const { return frames_.stats(); }

  /// Heap allocations attributed to the packet plane (channel, MAC,
  /// beacons). The MAC and beacon layers arm this scope around their
  /// event bodies; after warmup it must stop advancing — the steady
  /// state is allocation-free (docs/PACKET_PLANE.md), gated by
  /// bench_micro and scripts/check_all.sh.
  AllocCounters& net_allocs() { return net_allocs_; }
  const AllocCounters& net_allocs() const { return net_allocs_; }

 private:
  // One receiver's pending outcome of a frame; position i of the delivery
  // batch corresponds to flags[i] in the owning InFlightFrame.
  struct Delivery {
    Node* receiver = nullptr;
    bool randomly_lost = false;
  };

  // Everything the channel needs to finish one transmitted frame, parked
  // in a pooled slot so the delivery event captures only {this, handle}
  // (inline in SmallFn — no per-frame closure allocation) and the flag /
  // batch buffers are recycled across frames. `flags[i]` is set when a
  // later overlapping frame corrupts receiver i's reception.
  struct InFlightFrame {
    Packet packet;
    std::vector<unsigned char> flags;
    std::vector<Delivery> batch;

    void Reuse() {
      packet = Packet{};  // Drops the payload reference.
      flags.clear();
      batch.clear();
    }
  };
  using FrameHandle = FramePool<InFlightFrame>::Handle;

  // In-progress receptions of one receiver, struct-of-arrays: the sweep
  // and collision scans test `end_times` contiguously and only touch the
  // parallel arrays on a hit. Entry i of the three arrays describes one
  // reception: frame `frames[i]`, whose corruption bit is
  // `flags[flag_indices[i]]`. An entry with end_time > now always refers
  // to a live pool slot (its delivery event has not fired yet).
  struct ReceptionLane {
    std::vector<SimTime> end_times;
    std::vector<FrameHandle> frames;
    std::vector<uint32_t> flag_indices;

    // Drops entries whose reception already ended, preserving order.
    void Compact(SimTime now) {
      size_t kept = 0;
      for (size_t i = 0; i < end_times.size(); ++i) {
        if (end_times[i] <= now) continue;
        end_times[kept] = end_times[i];
        frames[kept] = frames[i];
        flag_indices[kept] = flag_indices[i];
        ++kept;
      }
      end_times.resize(kept);
      frames.resize(kept);
      flag_indices.resize(kept);
    }
  };

  // Frames currently in the air (carrier sensing), struct-of-arrays for
  // the same reason: IsBusyAt scans `end_times` first and reads the
  // origin only for non-expired frames.
  struct AirLane {
    std::vector<SimTime> end_times;
    std::vector<Point> origins;

    void Add(const Point& origin, SimTime end_time) {
      end_times.push_back(end_time);
      origins.push_back(origin);
    }
    void Compact(SimTime now) {
      size_t kept = 0;
      for (size_t i = 0; i < end_times.size(); ++i) {
        if (end_times[i] <= now) continue;
        end_times[kept] = end_times[i];
        origins[kept] = origins[i];
        ++kept;
      }
      end_times.resize(kept);
      origins.resize(kept);
    }
    bool AnyAudible(const Point& pos, SimTime now, double range2) const {
      for (size_t i = 0; i < end_times.size(); ++i) {
        if (end_times[i] > now &&
            SquaredDistance(origins[i], pos) <= range2) {
          return true;
        }
      }
      return false;
    }
  };

  // Cell coordinates of `p`, clamped into the grid's bounding box. The
  // box is fitted to node positions at rebuild time; clamping is
  // monotone and never increases distances, so two points within one
  // cell size of each other still land in adjacent (or equal) cells even
  // when one strays outside the box.
  struct CellCoord {
    int32_t cx = 0;
    int32_t cy = 0;
  };
  CellCoord CellCoordOf(const Point& p) const {
    int32_t cx = static_cast<int32_t>(
        std::floor((p.x - grid_min_x_) / cell_size_));
    int32_t cy = static_cast<int32_t>(
        std::floor((p.y - grid_min_y_) / cell_size_));
    cx = std::clamp(cx, 0, grid_nx_ - 1);
    cy = std::clamp(cy, 0, grid_ny_ - 1);
    return CellCoord{cx, cy};
  }
  int32_t CellIndexOf(const Point& p) const {
    const CellCoord c = CellCoordOf(p);
    return c.cy * grid_nx_ + c.cx;
  }

  // Drops expired frames from the brute-force air lane (anywhere in the
  // lane, not just the front, so one long frame cannot pin short ones).
  void PruneAir();

  // Fires the batched delivery of one pooled frame, then releases its
  // slot.
  void DeliverFrame(FrameHandle handle);

  // Re-airs a fault-duplicated frame parked in `handle`, then releases
  // its slot.
  void ReplayDuplicate(Node* sender, FrameHandle handle);

  // Runs the periodic housekeeping when due: (re)builds or refreshes the
  // node grid, sweeps expired air frames, and drains finished reception
  // lists. Called at the top of Transmit.
  void PeriodicSweep();

  // Moves `node` into the cell containing `position` (inserting it if it
  // is not yet bucketed).
  void PlaceNode(Node* node, const Point& position);

  // Collects the 3x3 cell neighborhood around `origin` into `scratch_`,
  // sorted by ascending node id.
  void GatherCandidates(const Point& origin) const;

  // Erases entries in `active_receptions_` whose receptions all ended.
  void SweepReceptions(SimTime now);

  Simulator* sim_;
  ChannelParams params_;
  Rng rng_;
  std::vector<std::pair<ObserverId, TransmitObserver>> transmit_observers_;
  ObserverId next_observer_id_ = 1;
  Tracer* tracer_ = nullptr;
  FaultHook fault_hook_;
  bool replaying_fault_ = false;  // Guards hook re-entry on duplicates.
  std::vector<Node*> nodes_;
  // In-flight frame slots; slots are released when the delivery (or
  // duplicate-replay) event fires, so live_count tracks the air.
  FramePool<InFlightFrame> frames_;
  // In-progress receptions, indexed by receiver id (node ids are dense).
  // Swept periodically, so memory stays bounded by the live population
  // even across churn-heavy runs.
  std::vector<ReceptionLane> active_receptions_;
  AirLane air_;  // Brute-force mode only.
  ChannelStats stats_;
  AllocCounters net_allocs_;

  // Spatial grid state: a flat row-major array of grid_nx_ x grid_ny_
  // cells fitted to the fleet's bounding box at rebuild time. Flat
  // indexing keeps the per-frame 3x3 probes at array-dereference cost
  // (no hashing on the hot path). Cells store (id, node) pairs so
  // candidate sorting compares contiguous ints instead of chasing Node
  // pointers. Mutable: IsBusyAt is logically const.
  bool grid_dirty_ = true;        // Attach happened; rebuild on next sweep.
  double cell_size_ = 0.0;        // radio_range + drift margin.
  SimTime next_sweep_ = 0.0;      // Next periodic refresh deadline.
  double grid_min_x_ = 0.0;
  double grid_min_y_ = 0.0;
  int32_t grid_nx_ = 0;
  int32_t grid_ny_ = 0;
  std::vector<std::vector<std::pair<NodeId, Node*>>> node_cells_;
  // Current cell index of each node, indexed by node id (dense; -1 =
  // unbucketed). The periodic refresh touches every node, so this
  // lookup must not hash.
  std::vector<int32_t> node_cell_of_;
  mutable std::vector<AirLane> air_cells_;
  mutable std::vector<std::pair<NodeId, Node*>> scratch_;  // Gather buffer.
};

}  // namespace diknn

#endif  // DIKNN_NET_CHANNEL_H_
