// Shared broadcast wireless channel with per-receiver collision detection.
//
// Model: a frame transmitted at time t occupies the air for
// duration = bytes * 8 / bit_rate, and is heard by every live node within
// `radio_range_m` of the sender. A receiver with two temporally overlapping
// audible frames corrupts both (no capture by default). Independent random
// loss models fading and interference beyond collisions. These are exactly
// the effects the paper's evaluation leans on: contention between
// concurrent itinerary traversals, KPT's collision-driven energy spike at
// large k, and accuracy degradation from lost packets.

#ifndef DIKNN_NET_CHANNEL_H_
#define DIKNN_NET_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/geometry.h"
#include "core/rng.h"
#include "net/energy_model.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace diknn {

class Node;

/// Physical-layer parameters.
struct ChannelParams {
  double radio_range_m = 20.0;  ///< Paper: r = 20 m.
  double bit_rate_bps = 250e3;  ///< Paper: 250 kbps LR-WPAN channel.
  double loss_rate = 0.0;       ///< Per-receiver independent drop prob.
  bool capture = false;         ///< If true, the earlier frame survives a
                                ///  collision when it is already mid-air.
};

/// Channel traffic counters, exposed for tests and benchmarks.
struct ChannelStats {
  uint64_t frames_sent = 0;
  uint64_t receptions_attempted = 0;
  uint64_t receptions_delivered = 0;
  uint64_t receptions_collided = 0;
  uint64_t receptions_lost = 0;  ///< Random loss (non-collision).
};

/// The shared medium. One instance per Network; all nodes attach to it.
class Channel {
 public:
  Channel(Simulator* sim, ChannelParams params, Rng rng);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Registers a node. Nodes must outlive the channel's pending events;
  /// the Network guarantees this by owning both.
  void Attach(Node* node);

  /// Starts transmitting `packet` from `sender` now. The MAC layer is
  /// responsible for carrier sensing before calling this. Transmission
  /// energy is charged to `sender` immediately; reception energy to each
  /// audible receiver when its reception completes. Both are attributed to
  /// `packet.category`.
  void Transmit(Node* sender, const Packet& packet);

  /// Carrier sense: true if any ongoing transmission is audible at `pos`.
  bool IsBusyAt(const Point& pos) const;

  /// Air time of a frame of `bytes` (including MAC header) at the
  /// configured bit rate.
  double FrameDuration(size_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / params_.bit_rate_bps;
  }

  const ChannelParams& params() const { return params_; }
  const ChannelStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ChannelStats{}; }

  /// Observer invoked at the start of every transmission, with the sender
  /// id and its position. Used by the trace recorder; pass nullptr to
  /// detach. Must not transmit re-entrantly.
  using TransmitObserver =
      std::function<void(const Packet&, NodeId sender, Point position)>;
  void set_transmit_observer(TransmitObserver observer) {
    transmit_observer_ = std::move(observer);
  }

 private:
  // One frame currently being received by one receiver.
  struct Reception {
    SimTime end_time = 0.0;
    std::shared_ptr<bool> corrupted;  // Shared with the delivery event.
  };

  // One frame currently in the air (for carrier sensing).
  struct AirFrame {
    Point origin;
    SimTime end_time = 0.0;
  };

  void PruneAir();

  Simulator* sim_;
  ChannelParams params_;
  Rng rng_;
  TransmitObserver transmit_observer_;
  std::vector<Node*> nodes_;
  std::unordered_map<NodeId, std::vector<Reception>> active_receptions_;
  std::deque<AirFrame> air_;
  ChannelStats stats_;
  uint64_t next_uid_ = 1;
};

}  // namespace diknn

#endif  // DIKNN_NET_CHANNEL_H_
