#include "net/packet.h"

namespace diknn {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kBeacon:
      return "Beacon";
    case MessageType::kMacAck:
      return "MacAck";
    case MessageType::kGeoRouted:
      return "GeoRouted";
    case MessageType::kDiknnQuery:
      return "DiknnQuery";
    case MessageType::kDiknnProbe:
      return "DiknnProbe";
    case MessageType::kDiknnDataReply:
      return "DiknnDataReply";
    case MessageType::kDiknnForward:
      return "DiknnForward";
    case MessageType::kDiknnRendezvous:
      return "DiknnRendezvous";
    case MessageType::kDiknnResult:
      return "DiknnResult";
    case MessageType::kKptQuery:
      return "KptQuery";
    case MessageType::kKptTreeBuild:
      return "KptTreeBuild";
    case MessageType::kKptTreeAck:
      return "KptTreeAck";
    case MessageType::kKptAggregate:
      return "KptAggregate";
    case MessageType::kKptResult:
      return "KptResult";
    case MessageType::kPeerRegister:
      return "PeerRegister";
    case MessageType::kPeerQuery:
      return "PeerQuery";
    case MessageType::kPeerProbe:
      return "PeerProbe";
    case MessageType::kPeerReply:
      return "PeerReply";
    case MessageType::kPeerResult:
      return "PeerResult";
    case MessageType::kFloodQuery:
      return "FloodQuery";
    case MessageType::kFloodReply:
      return "FloodReply";
    case MessageType::kWindowQuery:
      return "WindowQuery";
    case MessageType::kWindowProbe:
      return "WindowProbe";
    case MessageType::kWindowReply:
      return "WindowReply";
    case MessageType::kWindowForward:
      return "WindowForward";
    case MessageType::kWindowResult:
      return "WindowResult";
    case MessageType::kCentralUpdate:
      return "CentralUpdate";
    case MessageType::kCentralQuery:
      return "CentralQuery";
    case MessageType::kCentralResult:
      return "CentralResult";
    case MessageType::kAggQuery:
      return "AggQuery";
    case MessageType::kAggProbe:
      return "AggProbe";
    case MessageType::kAggReply:
      return "AggReply";
    case MessageType::kAggForward:
      return "AggForward";
    case MessageType::kAggResult:
      return "AggResult";
  }
  return "Unknown";
}

}  // namespace diknn
