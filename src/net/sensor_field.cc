#include "net/sensor_field.h"

#include <cmath>

namespace diknn {

SensorField::SensorField(double baseline, std::vector<FieldSource> sources,
                         double noise_stddev, uint64_t noise_seed)
    : baseline_(baseline),
      sources_(std::move(sources)),
      noise_stddev_(noise_stddev),
      noise_rng_(noise_seed) {}

double SensorField::Value(const Point& p, SimTime t) const {
  double value = baseline_;
  for (const FieldSource& s : sources_) {
    const Point center = s.start + s.velocity * t;
    const double d2 = SquaredDistance(p, center);
    value += s.amplitude * std::exp(-d2 / (2.0 * s.sigma * s.sigma));
  }
  return value;
}

double SensorField::Sample(const Point& p, SimTime t) {
  double value = Value(p, t);
  if (noise_stddev_ > 0.0) {
    value += noise_rng_.Normal(0.0, noise_stddev_);
  }
  return value;
}

Point SensorField::SourcePosition(size_t i, SimTime t) const {
  const FieldSource& s = sources_[i];
  return s.start + s.velocity * t;
}

SensorField SensorField::Random(const Rect& bounds, int count,
                                double amplitude, double sigma,
                                double max_drift, uint64_t seed) {
  Rng rng(seed);
  std::vector<FieldSource> sources;
  sources.reserve(count);
  for (int i = 0; i < count; ++i) {
    FieldSource s;
    s.start = rng.PointInRect(bounds);
    const double angle = rng.Uniform(0.0, kTwoPi);
    s.velocity = PointAtAngle({0, 0}, angle, rng.Uniform(0.0, max_drift));
    s.amplitude = amplitude * rng.Uniform(0.5, 1.5);
    s.sigma = sigma * rng.Uniform(0.7, 1.3);
    sources.push_back(s);
  }
  return SensorField(0.0, std::move(sources), 0.0, seed + 1);
}

}  // namespace diknn
