// Node churn (failure / recovery) injection.
//
// The paper motivates infrastructure-free processing with networks where
// "sensor nodes are mobile and packet loss is the norm" and nodes fail
// (battlefield attrition, battery death, smart-dust loss). This service
// drives an alternating up/down renewal process per node so tests,
// examples and benches can measure protocol behaviour under churn instead
// of hand-killing nodes.

#ifndef DIKNN_NET_CHURN_H_
#define DIKNN_NET_CHURN_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "net/node.h"
#include "sim/simulator.h"

namespace diknn {

/// Churn process parameters. Exponential holding times.
struct ChurnParams {
  double mean_up_time = 60.0;    ///< Mean seconds a node stays alive.
  double mean_down_time = 10.0;  ///< Mean seconds a dead node stays dead;
                                 ///  <= 0 makes failures permanent.
  double initial_dead_fraction = 0.0;  ///< Killed at Start().
};

/// Churn counters.
struct ChurnStats {
  uint64_t failures = 0;
  uint64_t recoveries = 0;
};

/// Drives set_alive(false/true) on a node population.
class NodeChurn {
 public:
  /// `protected_prefix`: node ids below this are never killed (e.g. the
  /// sink / base station).
  NodeChurn(Simulator* sim, std::vector<Node*> nodes, ChurnParams params,
            Rng rng, int protected_prefix = 1);

  /// Starts the renewal processes. Call once.
  void Start();

  const ChurnStats& stats() const { return stats_; }

  /// Live fraction of the managed population right now.
  double AliveFraction() const;

 private:
  void ScheduleFailure(Node* node);
  void ScheduleRecovery(Node* node);

  Simulator* sim_;
  std::vector<Node*> nodes_;
  ChurnParams params_;
  Rng rng_;
  int protected_prefix_;
  ChurnStats stats_;
};

}  // namespace diknn

#endif  // DIKNN_NET_CHURN_H_
