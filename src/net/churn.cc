#include "net/churn.h"

namespace diknn {

NodeChurn::NodeChurn(Simulator* sim, std::vector<Node*> nodes,
                     ChurnParams params, Rng rng, int protected_prefix)
    : sim_(sim),
      nodes_(std::move(nodes)),
      params_(params),
      rng_(rng),
      protected_prefix_(protected_prefix) {}

void NodeChurn::Start() {
  for (Node* node : nodes_) {
    if (node->id() < protected_prefix_ || node->is_infrastructure()) {
      continue;
    }
    if (params_.initial_dead_fraction > 0.0 &&
        rng_.Bernoulli(params_.initial_dead_fraction)) {
      node->set_alive(false);
      ++stats_.failures;
      ScheduleRecovery(node);
    } else {
      ScheduleFailure(node);
    }
  }
}

void NodeChurn::ScheduleFailure(Node* node) {
  if (params_.mean_up_time <= 0.0) return;
  const double delay = rng_.Exponential(params_.mean_up_time);
  sim_->ScheduleAfter(delay, [this, node]() {
    if (!node->alive()) return;  // Killed by someone else meanwhile.
    node->set_alive(false);
    ++stats_.failures;
    ScheduleRecovery(node);
  });
}

void NodeChurn::ScheduleRecovery(Node* node) {
  if (params_.mean_down_time <= 0.0) return;  // Permanent failure.
  const double delay = rng_.Exponential(params_.mean_down_time);
  sim_->ScheduleAfter(delay, [this, node]() {
    if (node->alive()) return;
    node->set_alive(true);
    ++stats_.recoveries;
    ScheduleFailure(node);
  });
}

double NodeChurn::AliveFraction() const {
  if (nodes_.empty()) return 1.0;
  int alive = 0;
  for (const Node* node : nodes_) {
    if (node->alive()) ++alive;
  }
  return static_cast<double>(alive) / nodes_.size();
}

}  // namespace diknn
