// CSMA-CA medium access with acknowledged unicast, modeled after
// unslotted IEEE 802.15.4 (the paper's LR-WPAN setting, RTS/CTS disabled).
//
// Behaviour per frame:
//   1. Draw a random backoff of [0, 2^BE - 1] slots, wait it out.
//   2. Carrier-sense; if the channel is busy, increase BE (capped) and go
//      to 1, up to max_csma_backoffs times, after which the attempt fails.
//   3. Transmit. Broadcasts complete when the frame ends. Unicasts wait
//      for a MAC-level ACK; a missing ACK triggers a full retry (new CSMA
//      round) up to max_frame_retries times.
//
// Receivers acknowledge unicast frames addressed to them without CSMA
// (802.15.4 ACKs follow a fixed turnaround) and suppress duplicate
// deliveries to the protocol layer via a recent (src, uid) cache.
//
// Steady-state allocation discipline (docs/PACKET_PLANE.md): the outbound
// FIFO and duplicate cache are flat recycled buffers, ACK payloads come
// from the message pool, and completion callbacks use inline-storage
// BasicSmallFn — after warmup, queuing / sending / acknowledging a frame
// performs no heap allocation.

#ifndef DIKNN_NET_MAC_H_
#define DIKNN_NET_MAC_H_

#include <cstdint>

#include "core/flat_map.h"
#include "core/ring_buffer.h"
#include "core/rng.h"
#include "net/channel.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "sim/small_fn.h"

namespace diknn {

class Node;

/// MAC-layer tunables; defaults follow 802.15.4 (2.4 GHz) constants.
struct MacParams {
  double backoff_slot_s = 320e-6;  ///< aUnitBackoffPeriod at 250 kbps.
  int min_be = 3;                  ///< macMinBE.
  int max_be = 5;                  ///< macMaxBE.
  int max_csma_backoffs = 4;       ///< macMaxCSMABackoffs.
  int max_frame_retries = 3;       ///< macMaxFrameRetries.
  double ack_turnaround_s = 192e-6;///< RX-to-TX turnaround (12 symbols).
  double ack_timeout_s = 3e-3;     ///< Wait for ACK before retrying.
  size_t ack_bytes = 11;           ///< ACK frame size on the air.
};

/// MAC traffic counters.
struct MacStats {
  uint64_t frames_queued = 0;
  uint64_t tx_attempts = 0;      ///< Physical transmissions started.
  uint64_t retries = 0;          ///< Unicast retransmissions.
  uint64_t csma_failures = 0;    ///< Gave up after max backoffs.
  uint64_t send_failures = 0;    ///< Frames reported failed to the caller.
  uint64_t duplicates_dropped = 0;
};

/// Per-node MAC entity. Owns a FIFO of outbound frames and serializes
/// access to the radio.
class Mac {
 public:
  /// Completion callback: true when the frame was delivered (broadcasts:
  /// when it finished transmitting), false when all retries failed.
  /// Move-only with inline storage — protocol completion lambdas must fit
  /// BasicSmallFn's capture budget to stay off the heap.
  using SendCallback = BasicSmallFn<void(bool)>;

  Mac(Node* node, Channel* channel, Simulator* sim, MacParams params,
      Rng rng);

  Mac(const Mac&) = delete;
  Mac& operator=(const Mac&) = delete;

  /// Queues a frame. `packet.uid` is assigned here.
  void Send(Packet packet, EnergyCategory category, SendCallback callback);

  /// Called by the Node on every physical reception. Returns true if the
  /// frame was consumed by the MAC (an ACK, a duplicate, or a unicast for
  /// somebody else); false if it should be delivered to the protocols.
  bool FilterReceive(const Packet& packet);

  const MacStats& stats() const { return stats_; }

  /// Frames currently queued or in flight.
  size_t QueueDepth() const { return queue_.size(); }

 private:
  struct OutFrame {
    Packet packet;
    EnergyCategory category = EnergyCategory::kQuery;
    SendCallback callback;
    int retries_left = 0;
  };

  /// MAC-internal ACK payload.
  struct AckMessage : Message {
    uint64_t acked_uid = 0;
    explicit AckMessage(uint64_t uid) : acked_uid(uid) {}
  };

  // Begins CSMA for the head-of-queue frame.
  void StartCsma();
  // One backoff+sense attempt.
  void CsmaAttempt(int backoffs_done, int be);
  // Channel clear: actually transmit the head frame.
  void TransmitHead();
  // Head frame is finished (success or failure): pop, notify, continue.
  void CompleteHead(bool success);
  // ACK wait expired without a matching ACK.
  void OnAckTimeout();

  // The channel's packet-plane allocation counters (nullptr when detached
  // from a channel, e.g. bare test rigs).
  AllocCounters* net_allocs() const;

  Node* node_;
  Channel* channel_;
  Simulator* sim_;
  MacParams params_;
  Rng rng_;

  RingBuffer<OutFrame> queue_;
  bool busy_ = false;              // CSMA or transmission in progress.
  uint64_t awaiting_ack_uid_ = 0;  // 0 = not waiting.
  EventId ack_timeout_event_ = 0;
  // Bumped whenever the head frame changes or a new CSMA round starts, so
  // stale scheduled backoff events (e.g. after a late ACK completed the
  // frame mid-retry) recognize themselves and bail out.
  uint64_t csma_generation_ = 0;

  // Duplicate suppression: uids recently delivered upward, bounded FIFO.
  FlatSet<uint64_t> seen_uids_;
  RingBuffer<uint64_t> seen_order_;
  static constexpr size_t kSeenCapacity = 256;

  MacStats stats_;
  uint64_t next_uid_base_;
};

}  // namespace diknn

#endif  // DIKNN_NET_MAC_H_
