// Per-node neighbor table, populated from periodic location beacons.
//
// Section 3.1 of the paper: "Beacons with locations and identities (IDs)
// are periodically broadcasted. Every sensor node also maintains a table
// enrolling IDs and locations of neighbor nodes falling within its radio
// range r." Entries expire after a staleness timeout (several beacon
// periods), so nodes that moved away or died disappear from the table.

#ifndef DIKNN_NET_NEIGHBOR_TABLE_H_
#define DIKNN_NET_NEIGHBOR_TABLE_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/geometry.h"
#include "net/packet.h"
#include "sim/event_queue.h"

namespace diknn {

/// One known neighbor, as last heard from.
struct NeighborEntry {
  NodeId id = kInvalidNodeId;
  Point position;          ///< Position advertised in the last beacon.
  double speed = 0.0;      ///< Speed advertised in the last beacon (m/s).
  SimTime last_heard = 0;  ///< Time the last beacon arrived.
};

/// Neighbor table with staleness-based eviction.
class NeighborTable {
 public:
  /// `timeout`: entries unheard-of for longer than this are dropped.
  explicit NeighborTable(SimTime timeout = 1.5) : timeout_(timeout) {}

  /// Inserts or refreshes an entry from a beacon heard at time `now`.
  void Update(NodeId id, Point position, double speed, SimTime now);

  /// Removes a neighbor explicitly (e.g., unicast to it failed).
  void Remove(NodeId id);

  /// Drops entries older than the timeout relative to `now`.
  void Expire(SimTime now);

  /// Live entry for `id`, if present and fresh at `now`.
  std::optional<NeighborEntry> Lookup(NodeId id, SimTime now) const;

  /// All fresh entries at time `now`.
  std::vector<NeighborEntry> Snapshot(SimTime now) const;

  /// Number of fresh entries at `now`.
  int CountFresh(SimTime now) const;

  /// Fresh neighbor geometrically closest to `target`; nullopt if empty.
  std::optional<NeighborEntry> ClosestTo(const Point& target,
                                         SimTime now) const;

  /// Fresh neighbors strictly closer to `target` than `threshold` meters.
  std::vector<NeighborEntry> CloserThan(const Point& target, double threshold,
                                        SimTime now) const;

  /// Counts fresh neighbors farther than `radius` from `from` — the
  /// "newly encountered neighbors" enc_i of the paper's Section 4.1.
  int CountFartherThan(const Point& from, double radius, SimTime now) const;

  /// The maximum advertised speed among fresh neighbors (0 if none) — the
  /// mu record used by the paper's mobility-assurance mechanism.
  double MaxNeighborSpeed(SimTime now) const;

  SimTime timeout() const { return timeout_; }

 private:
  bool Fresh(const NeighborEntry& e, SimTime now) const {
    return now - e.last_heard <= timeout_;
  }

  SimTime timeout_;
  std::unordered_map<NodeId, NeighborEntry> entries_;
};

}  // namespace diknn

#endif  // DIKNN_NET_NEIGHBOR_TABLE_H_
