// Per-node neighbor table, populated from periodic location beacons.
//
// Section 3.1 of the paper: "Beacons with locations and identities (IDs)
// are periodically broadcasted. Every sensor node also maintains a table
// enrolling IDs and locations of neighbor nodes falling within its radio
// range r." Entries expire after a staleness timeout (several beacon
// periods), so nodes that moved away or died disappear from the table.
//
// Layout (docs/PACKET_PLANE.md): struct-of-arrays. The geometric scans
// that dominate the hot path — greedy next-hop selection, boundary
// estimation, planarization — touch only the position lane, so entries
// are stored as four parallel flat vectors in insertion order with a
// FlatMap id->lane index on the side. Insertion order is preserved across
// erasure (lanes are compacted, not swap-erased), which makes iteration
// order a pure function of the beacon history and keeps runs bit-identical
// across --jobs counts. In steady state (table grown to its high-water
// capacity) updates, removals, expiry sweeps and scans allocate nothing.

#ifndef DIKNN_NET_NEIGHBOR_TABLE_H_
#define DIKNN_NET_NEIGHBOR_TABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/flat_map.h"
#include "core/geometry.h"
#include "net/packet.h"
#include "sim/event_queue.h"

namespace diknn {

/// One known neighbor, as last heard from.
struct NeighborEntry {
  NodeId id = kInvalidNodeId;
  Point position;          ///< Position advertised in the last beacon.
  double speed = 0.0;      ///< Speed advertised in the last beacon (m/s).
  SimTime last_heard = 0;  ///< Time the last beacon arrived.
};

/// Neighbor table with staleness-based eviction.
class NeighborTable {
 public:
  /// `timeout`: entries unheard-of for longer than this are dropped.
  explicit NeighborTable(SimTime timeout = 1.5) : timeout_(timeout) {}

  /// Pre-sizes the lanes and the id index for `n` entries, so a table
  /// that never exceeds `n` concurrent neighbors never allocates after
  /// construction. The parallel engine calls this with a density-derived
  /// bound to keep its steady-state allocation gate at zero.
  void Reserve(size_t n);

  /// Inserts or refreshes an entry from a beacon heard at time `now`.
  void Update(NodeId id, Point position, double speed, SimTime now);

  /// Removes a neighbor explicitly (e.g., unicast to it failed).
  void Remove(NodeId id);

  /// Drops entries older than the timeout relative to `now`.
  void Expire(SimTime now);

  /// Live entry for `id`, if present and fresh at `now`.
  std::optional<NeighborEntry> Lookup(NodeId id, SimTime now) const;

  /// All fresh entries at time `now`. Allocates the result vector; hot
  /// paths should use SnapshotInto with a reused scratch buffer instead.
  std::vector<NeighborEntry> Snapshot(SimTime now) const;

  /// Clears `out` and fills it with all fresh entries at `now`, in table
  /// (insertion) order. Reusing `out` across calls makes this
  /// allocation-free once it has reached its high-water capacity.
  void SnapshotInto(SimTime now, std::vector<NeighborEntry>* out) const;

  /// Calls `fn(const NeighborEntry&)` for every fresh entry at `now`, in
  /// table order, without materializing a snapshot.
  template <typename Fn>
  void ForEachFresh(SimTime now, Fn&& fn) const {
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (!FreshAt(i, now)) continue;
      fn(NeighborEntry{ids_[i], positions_[i], speeds_[i], last_heard_[i]});
    }
  }

  /// Number of fresh entries at `now`.
  int CountFresh(SimTime now) const;

  /// Fresh neighbor geometrically closest to `target`; nullopt if empty.
  std::optional<NeighborEntry> ClosestTo(const Point& target,
                                         SimTime now) const;

  /// Fresh neighbors strictly closer to `target` than `threshold` meters.
  std::vector<NeighborEntry> CloserThan(const Point& target, double threshold,
                                        SimTime now) const;

  /// Counts fresh neighbors farther than `radius` from `from` — the
  /// "newly encountered neighbors" enc_i of the paper's Section 4.1.
  int CountFartherThan(const Point& from, double radius, SimTime now) const;

  /// The maximum advertised speed among fresh neighbors (0 if none) — the
  /// mu record used by the paper's mobility-assurance mechanism.
  double MaxNeighborSpeed(SimTime now) const;

  SimTime timeout() const { return timeout_; }

 private:
  bool FreshAt(size_t i, SimTime now) const {
    return now - last_heard_[i] <= timeout_;
  }

  // Rebuilds the id->lane index from the lanes (after compaction).
  // Allocation-free: FlatMap::clear retains capacity.
  void RebuildIndex();

  SimTime timeout_;
  // Parallel lanes, insertion-ordered; index_ maps id -> lane position.
  std::vector<NodeId> ids_;
  std::vector<Point> positions_;
  std::vector<double> speeds_;
  std::vector<SimTime> last_heard_;
  FlatMap<NodeId, uint32_t> index_;
};

}  // namespace diknn

#endif  // DIKNN_NET_NEIGHBOR_TABLE_H_
