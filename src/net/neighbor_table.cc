#include "net/neighbor_table.h"

#include <algorithm>
#include <limits>

namespace diknn {

void NeighborTable::Update(NodeId id, Point position, double speed,
                           SimTime now) {
  entries_[id] = NeighborEntry{id, position, speed, now};
}

void NeighborTable::Remove(NodeId id) { entries_.erase(id); }

void NeighborTable::Expire(SimTime now) {
  std::erase_if(entries_,
                [&](const auto& kv) { return !Fresh(kv.second, now); });
}

std::optional<NeighborEntry> NeighborTable::Lookup(NodeId id,
                                                   SimTime now) const {
  auto it = entries_.find(id);
  if (it == entries_.end() || !Fresh(it->second, now)) return std::nullopt;
  return it->second;
}

std::vector<NeighborEntry> NeighborTable::Snapshot(SimTime now) const {
  std::vector<NeighborEntry> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    if (Fresh(e, now)) out.push_back(e);
  }
  return out;
}

int NeighborTable::CountFresh(SimTime now) const {
  int count = 0;
  for (const auto& [id, e] : entries_) {
    if (Fresh(e, now)) ++count;
  }
  return count;
}

std::optional<NeighborEntry> NeighborTable::ClosestTo(const Point& target,
                                                      SimTime now) const {
  std::optional<NeighborEntry> best;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const auto& [id, e] : entries_) {
    if (!Fresh(e, now)) continue;
    const double d2 = SquaredDistance(e.position, target);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = e;
    }
  }
  return best;
}

std::vector<NeighborEntry> NeighborTable::CloserThan(const Point& target,
                                                     double threshold,
                                                     SimTime now) const {
  std::vector<NeighborEntry> out;
  const double t2 = threshold * threshold;
  for (const auto& [id, e] : entries_) {
    if (Fresh(e, now) && SquaredDistance(e.position, target) < t2) {
      out.push_back(e);
    }
  }
  return out;
}

int NeighborTable::CountFartherThan(const Point& from, double radius,
                                    SimTime now) const {
  int count = 0;
  const double r2 = radius * radius;
  for (const auto& [id, e] : entries_) {
    if (Fresh(e, now) && SquaredDistance(e.position, from) > r2) ++count;
  }
  return count;
}

double NeighborTable::MaxNeighborSpeed(SimTime now) const {
  double max_speed = 0.0;
  for (const auto& [id, e] : entries_) {
    if (Fresh(e, now)) max_speed = std::max(max_speed, e.speed);
  }
  return max_speed;
}

}  // namespace diknn
