#include "net/neighbor_table.h"

#include <algorithm>
#include <limits>

#include "core/alloc_probe.h"

namespace diknn {

void NeighborTable::Reserve(size_t n) {
  ids_.reserve(n);
  positions_.reserve(n);
  speeds_.reserve(n);
  last_heard_.reserve(n);
  index_.reserve(n);
}

void NeighborTable::Update(NodeId id, Point position, double speed,
                           SimTime now) {
  if (const uint32_t* k = index_.find(id)) {
    positions_[*k] = position;
    speeds_[*k] = speed;
    last_heard_[*k] = now;
    return;
  }
  // First contact: lane growth is table capacity (lanes and index never
  // shrink), not a per-beacon transient allocation.
  AllocScopePause capacity;
  index_.TryEmplace(id, static_cast<uint32_t>(ids_.size()));
  ids_.push_back(id);
  positions_.push_back(position);
  speeds_.push_back(speed);
  last_heard_.push_back(now);
}

void NeighborTable::RebuildIndex() {
  index_.clear();
  for (size_t i = 0; i < ids_.size(); ++i) {
    index_.TryEmplace(ids_[i], static_cast<uint32_t>(i));
  }
}

void NeighborTable::Remove(NodeId id) {
  const uint32_t* k = index_.find(id);
  if (k == nullptr) return;
  const size_t i = *k;
  ids_.erase(ids_.begin() + i);
  positions_.erase(positions_.begin() + i);
  speeds_.erase(speeds_.begin() + i);
  last_heard_.erase(last_heard_.begin() + i);
  RebuildIndex();
}

void NeighborTable::Expire(SimTime now) {
  size_t w = 0;
  for (size_t r = 0; r < ids_.size(); ++r) {
    if (!FreshAt(r, now)) continue;
    if (w != r) {
      ids_[w] = ids_[r];
      positions_[w] = positions_[r];
      speeds_[w] = speeds_[r];
      last_heard_[w] = last_heard_[r];
    }
    ++w;
  }
  if (w == ids_.size()) return;
  ids_.resize(w);
  positions_.resize(w);
  speeds_.resize(w);
  last_heard_.resize(w);
  RebuildIndex();
}

std::optional<NeighborEntry> NeighborTable::Lookup(NodeId id,
                                                   SimTime now) const {
  const uint32_t* k = index_.find(id);
  if (k == nullptr || !FreshAt(*k, now)) return std::nullopt;
  const size_t i = *k;
  return NeighborEntry{ids_[i], positions_[i], speeds_[i], last_heard_[i]};
}

std::vector<NeighborEntry> NeighborTable::Snapshot(SimTime now) const {
  std::vector<NeighborEntry> out;
  SnapshotInto(now, &out);
  return out;
}

void NeighborTable::SnapshotInto(SimTime now,
                                 std::vector<NeighborEntry>* out) const {
  out->clear();
  if (out->capacity() < ids_.size()) {
    AllocScopePause capacity;  // Scratch high-water growth only.
    out->reserve(ids_.size());
  }
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (FreshAt(i, now)) {
      out->push_back(
          NeighborEntry{ids_[i], positions_[i], speeds_[i], last_heard_[i]});
    }
  }
}

int NeighborTable::CountFresh(SimTime now) const {
  int count = 0;
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (FreshAt(i, now)) ++count;
  }
  return count;
}

std::optional<NeighborEntry> NeighborTable::ClosestTo(const Point& target,
                                                      SimTime now) const {
  size_t best = ids_.size();
  double best_d2 = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (!FreshAt(i, now)) continue;
    const double d2 = SquaredDistance(positions_[i], target);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  if (best == ids_.size()) return std::nullopt;
  return NeighborEntry{ids_[best], positions_[best], speeds_[best],
                       last_heard_[best]};
}

std::vector<NeighborEntry> NeighborTable::CloserThan(const Point& target,
                                                     double threshold,
                                                     SimTime now) const {
  std::vector<NeighborEntry> out;
  const double t2 = threshold * threshold;
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (FreshAt(i, now) && SquaredDistance(positions_[i], target) < t2) {
      out.push_back(
          NeighborEntry{ids_[i], positions_[i], speeds_[i], last_heard_[i]});
    }
  }
  return out;
}

int NeighborTable::CountFartherThan(const Point& from, double radius,
                                    SimTime now) const {
  int count = 0;
  const double r2 = radius * radius;
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (FreshAt(i, now) && SquaredDistance(positions_[i], from) > r2) ++count;
  }
  return count;
}

double NeighborTable::MaxNeighborSpeed(SimTime now) const {
  double max_speed = 0.0;
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (FreshAt(i, now)) max_speed = std::max(max_speed, speeds_[i]);
  }
  return max_speed;
}

}  // namespace diknn
