#include "net/network.h"

#include <algorithm>
#include <cassert>

namespace diknn {

namespace {

std::unique_ptr<MobilityModel> MakeMobility(const NetworkConfig& config,
                                            Point start, Rng rng) {
  switch (config.mobility) {
    case MobilityKind::kStatic:
      return std::make_unique<StaticMobility>(start);
    case MobilityKind::kRandomWaypoint:
    case MobilityKind::kGroup:  // Group references built in the ctor.
      return std::make_unique<RandomWaypointMobility>(
          start, config.field, config.max_speed, rng);
  }
  return std::make_unique<StaticMobility>(start);
}

}  // namespace

Network::Network(const NetworkConfig& config)
    : config_(config), sim_(config.scheduler), rng_(config.seed) {
  if (!config_.explicit_positions.empty()) {
    config_.node_count =
        static_cast<int>(config_.explicit_positions.size());
  }
  ChannelParams chan;
  chan.radio_range_m = config.radio_range_m;
  chan.bit_rate_bps = config.bit_rate_bps;
  chan.loss_rate = config.loss_rate;
  chan.use_spatial_grid = config.use_spatial_grid;
  channel_ = std::make_unique<Channel>(&sim_, chan, rng_.Fork());

  const std::vector<Point> positions =
      config_.explicit_positions.empty()
          ? GeneratePositions(config_.placement, config_.node_count,
                              config_.field, rng_, config_.clusters)
          : config_.explicit_positions;

  NodeParams node_params;
  node_params.energy = config.energy;
  node_params.mac = config.mac;
  node_params.neighbor_timeout = config.neighbor_timeout;

  // Group (RPGM) mobility: one shared reference trajectory per herd,
  // seeded at the first member's generated position.
  std::vector<GroupMobility::Reference> group_refs;
  if (config_.mobility == MobilityKind::kGroup) {
    const int groups =
        (config_.node_count + config_.group_size - 1) /
        std::max(1, config_.group_size);
    for (int g = 0; g < groups; ++g) {
      const Point start = positions[std::min<size_t>(
          static_cast<size_t>(g) * config_.group_size,
          positions.size() - 1)];
      group_refs.push_back(std::make_shared<RandomWaypointMobility>(
          start, config_.field, config_.max_speed, rng_.Fork()));
    }
  }

  nodes_.reserve(config_.node_count +
                 config_.infrastructure_positions.size());
  for (int i = 0; i < config_.node_count; ++i) {
    std::unique_ptr<MobilityModel> mobility;
    if (i < config_.static_node_count) {
      mobility = std::make_unique<StaticMobility>(positions[i]);
    } else if (config_.mobility == MobilityKind::kGroup) {
      const auto& ref =
          group_refs[i / std::max(1, config_.group_size)];
      mobility = std::make_unique<GroupMobility>(
          ref, rng_.PointInDisk({0, 0}, config_.group_radius * 0.7),
          config_.group_radius, config_.group_member_speed, config_.field,
          rng_.Fork());
    } else {
      mobility = MakeMobility(config_, positions[i], rng_.Fork());
    }
    auto node = std::make_unique<Node>(i, &sim_, channel_.get(),
                                       std::move(mobility), node_params,
                                       rng_.Fork());
    channel_->Attach(node.get());
    nodes_.push_back(std::move(node));
  }
  for (const Point& p : config_.infrastructure_positions) {
    auto node = std::make_unique<Node>(
        static_cast<NodeId>(nodes_.size()), &sim_, channel_.get(),
        std::make_unique<StaticMobility>(p), node_params, rng_.Fork());
    node->set_infrastructure(true);
    channel_->Attach(node.get());
    nodes_.push_back(std::move(node));
  }

  beacons_ = std::make_unique<BeaconService>(&sim_, AllNodes(),
                                             config_.beacon_interval,
                                             rng_.Fork());
}

std::vector<Node*> Network::AllNodes() {
  std::vector<Node*> out;
  out.reserve(nodes_.size());
  for (auto& n : nodes_) out.push_back(n.get());
  return out;
}

void Network::Warmup(SimTime duration) {
  beacons_->Start();
  sim_.RunUntil(sim_.Now() + duration);
}

std::vector<NodeId> Network::TrueKnn(const Point& q, int k) {
  struct Entry {
    double d2;
    NodeId id;
  };
  std::vector<Entry> entries;
  entries.reserve(nodes_.size());
  for (auto& n : nodes_) {
    if (!n->alive() || n->is_infrastructure()) continue;
    entries.push_back({SquaredDistance(n->Position(), q), n->id()});
  }
  const size_t take = std::min<size_t>(k, entries.size());
  std::partial_sort(entries.begin(), entries.begin() + take, entries.end(),
                    [](const Entry& a, const Entry& b) {
                      if (a.d2 != b.d2) return a.d2 < b.d2;
                      return a.id < b.id;
                    });
  std::vector<NodeId> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(entries[i].id);
  return out;
}

NodeId Network::TrueNearestNode(const Point& q) {
  const auto knn = TrueKnn(q, 1);
  return knn.empty() ? kInvalidNodeId : knn[0];
}

double Network::TotalEnergy(EnergyCategory category) const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n->energy().Joules(category);
  return total;
}

double Network::TotalEnergy() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n->energy().TotalJoules();
  return total;
}

double Network::AverageDegree() {
  if (nodes_.empty()) return 0.0;
  double sum = 0.0;
  int live = 0;
  for (auto& n : nodes_) {
    if (!n->alive()) continue;
    sum += n->neighbors().CountFresh(sim_.Now());
    ++live;
  }
  return live == 0 ? 0.0 : sum / live;
}

}  // namespace diknn
