#include "net/channel.h"

#include <algorithm>

#include "net/node.h"

namespace diknn {

Channel::Channel(Simulator* sim, ChannelParams params, Rng rng)
    : sim_(sim), params_(params), rng_(rng) {}

void Channel::Attach(Node* node) { nodes_.push_back(node); }

void Channel::PruneAir() {
  const SimTime now = sim_->Now();
  while (!air_.empty() && air_.front().end_time <= now) air_.pop_front();
}

bool Channel::IsBusyAt(const Point& pos) const {
  const SimTime now = sim_->Now();
  const double range2 = params_.radio_range_m * params_.radio_range_m;
  for (const AirFrame& f : air_) {
    if (f.end_time > now && SquaredDistance(f.origin, pos) <= range2) {
      return true;
    }
  }
  return false;
}

void Channel::Transmit(Node* sender, const Packet& packet) {
  const EnergyCategory category = packet.category;
  const SimTime now = sim_->Now();
  const double duration = FrameDuration(packet.size_bytes);
  const SimTime end = now + duration;
  const Point origin = sender->Position();

  ++stats_.frames_sent;
  sender->energy().ChargeTx(packet.size_bytes, params_.radio_range_m,
                            category);
  if (transmit_observer_) {
    transmit_observer_(packet, sender->id(), origin);
  }

  PruneAir();
  air_.push_back(AirFrame{origin, end});

  const double range2 = params_.radio_range_m * params_.radio_range_m;
  for (Node* receiver : nodes_) {
    if (receiver == sender || !receiver->alive()) continue;
    if (SquaredDistance(receiver->Position(), origin) > range2) continue;

    ++stats_.receptions_attempted;

    // Collision check: any reception still in progress at this receiver
    // overlaps the new frame, corrupting both (the new frame always; the
    // ongoing one too unless capture mode preserves it).
    auto corrupted = std::make_shared<bool>(false);
    auto& recs = active_receptions_[receiver->id()];
    std::erase_if(recs, [&](const Reception& r) { return r.end_time <= now; });
    for (Reception& r : recs) {
      *corrupted = true;
      if (!params_.capture) *r.corrupted = true;
    }
    recs.push_back(Reception{end, corrupted});

    // Independent random loss (fading, external interference).
    const bool randomly_lost = rng_.Bernoulli(params_.loss_rate);

    sim_->ScheduleAt(end, [this, receiver, packet, corrupted, randomly_lost,
                           category]() {
      // The radio listened for the whole frame either way.
      receiver->energy().ChargeRx(packet.size_bytes, category);
      if (*corrupted) {
        ++stats_.receptions_collided;
        return;
      }
      if (randomly_lost) {
        ++stats_.receptions_lost;
        return;
      }
      ++stats_.receptions_delivered;
      receiver->HandlePhyReceive(packet);
    });
  }
}

}  // namespace diknn
