#include "net/channel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "net/node.h"
#include "obs/tracer.h"

namespace diknn {

Channel::Channel(Simulator* sim, ChannelParams params, Rng rng)
    : sim_(sim), params_(params), rng_(rng) {}

void Channel::Attach(Node* node) {
  nodes_.push_back(node);
  // A new node can raise the fleet's speed bound and therefore the cell
  // size; rebuild the grid lazily on the next transmission.
  grid_dirty_ = true;
}

void Channel::PruneAir() { air_.Compact(sim_->Now()); }

void Channel::SweepReceptions(SimTime now) {
  for (ReceptionLane& lane : active_receptions_) lane.Compact(now);
}

void Channel::PlaceNode(Node* node, const Point& position) {
  AllocScopePause capacity;  // Cell membership lists grow to high water.
  const int32_t index = CellIndexOf(position);
  const size_t slot = static_cast<size_t>(node->id());
  if (slot >= node_cell_of_.size()) node_cell_of_.resize(slot + 1, -1);
  const int32_t old_index = node_cell_of_[slot];
  if (old_index == index) return;  // Common case: same cell.
  if (old_index >= 0) {
    auto& old_cell = node_cells_[old_index];
    old_cell.erase(std::find_if(
        old_cell.begin(), old_cell.end(),
        [node](const auto& entry) { return entry.second == node; }));
  }
  node_cell_of_[slot] = index;
  node_cells_[index].emplace_back(node->id(), node);
}

void Channel::RebucketNode(Node* node, const Point& position) {
  if (!params_.use_spatial_grid || grid_dirty_) return;
  const size_t slot = static_cast<size_t>(node->id());
  // Not attached (test rigs) or not yet bucketed: ignore.
  if (slot >= node_cell_of_.size() || node_cell_of_[slot] < 0) return;
  PlaceNode(node, position);
}

void Channel::PeriodicSweep() {
  const SimTime now = sim_->Now();
  const bool rebuild = params_.use_spatial_grid && grid_dirty_;
  if (!rebuild && now < next_sweep_) return;
  next_sweep_ = now + params_.grid_refresh_interval_s;

  if (params_.use_spatial_grid) {
    if (rebuild) {
      // Cell size = radio range + the farthest any node can drift from
      // its bucketed position before the next refresh. This keeps the
      // 3x3 neighborhood a superset of the true radio disk.
      double speed_bound = 0.0;
      for (const Node* n : nodes_) {
        speed_bound = std::max(speed_bound, n->MaxSpeed());
      }
      cell_size_ = std::max(params_.radio_range_m, 1e-3) +
                   speed_bound * params_.grid_refresh_interval_s;
      // Fit the cell array to the fleet's current bounding box. Nodes
      // that later wander outside it are clamped to the border cells,
      // which preserves the 3x3 superset property (clamping never
      // increases distances).
      grid_min_x_ = 0.0;
      grid_min_y_ = 0.0;
      double max_x = 0.0;
      double max_y = 0.0;
      bool first = true;
      for (Node* n : nodes_) {
        const Point p = n->Position();
        if (first) {
          grid_min_x_ = max_x = p.x;
          grid_min_y_ = max_y = p.y;
          first = false;
        } else {
          grid_min_x_ = std::min(grid_min_x_, p.x);
          grid_min_y_ = std::min(grid_min_y_, p.y);
          max_x = std::max(max_x, p.x);
          max_y = std::max(max_y, p.y);
        }
      }
      grid_nx_ = static_cast<int32_t>(
                     std::floor((max_x - grid_min_x_) / cell_size_)) + 1;
      grid_ny_ = static_cast<int32_t>(
                     std::floor((max_y - grid_min_y_) / cell_size_)) + 1;
      // Collect live air frames before the geometry changes under them.
      AirLane live_air;
      for (const AirLane& lane : air_cells_) {
        for (size_t i = 0; i < lane.end_times.size(); ++i) {
          if (lane.end_times[i] > now) {
            live_air.Add(lane.origins[i], lane.end_times[i]);
          }
        }
      }
      node_cells_.assign(static_cast<size_t>(grid_nx_) * grid_ny_, {});
      air_cells_.assign(static_cast<size_t>(grid_nx_) * grid_ny_, {});
      std::fill(node_cell_of_.begin(), node_cell_of_.end(), -1);
      for (size_t i = 0; i < live_air.end_times.size(); ++i) {
        air_cells_[CellIndexOf(live_air.origins[i])].Add(
            live_air.origins[i], live_air.end_times[i]);
      }
      grid_dirty_ = false;
    }
    // Refresh every bucket from true positions; dead nodes keep moving
    // (their radio is off, not their legs) and may be revived by churn,
    // so they stay tracked.
    for (Node* n : nodes_) PlaceNode(n, n->Position());
    for (AirLane& lane : air_cells_) lane.Compact(now);
  }
  SweepReceptions(now);
}

void Channel::GatherCandidates(const Point& origin) const {
  AllocScopePause capacity;  // Scratch high-water growth only.
  scratch_.clear();
  const CellCoord c = CellCoordOf(origin);
  const int32_t x0 = std::max(c.cx - 1, 0);
  const int32_t x1 = std::min(c.cx + 1, grid_nx_ - 1);
  const int32_t y0 = std::max(c.cy - 1, 0);
  const int32_t y1 = std::min(c.cy + 1, grid_ny_ - 1);
  for (int32_t cy = y0; cy <= y1; ++cy) {
    for (int32_t cx = x0; cx <= x1; ++cx) {
      const auto& cell = node_cells_[cy * grid_nx_ + cx];
      scratch_.insert(scratch_.end(), cell.begin(), cell.end());
    }
  }
  // Ascending node-id order: matches the brute-force scan (nodes attach
  // in id order), so the per-receiver RNG draws below happen in the same
  // sequence and outcomes stay bit-identical. Ids are carried in the
  // cell entries so the sort never dereferences a Node.
  std::sort(scratch_.begin(), scratch_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

bool Channel::IsBusyAt(const Point& pos) const {
  const SimTime now = sim_->Now();
  const double range2 = params_.radio_range_m * params_.radio_range_m;

  if (!params_.use_spatial_grid) return air_.AnyAudible(pos, now, range2);

  if (grid_nx_ <= 0) return false;  // No transmission yet.
  const CellCoord c = CellCoordOf(pos);
  const int32_t x0 = std::max(c.cx - 1, 0);
  const int32_t x1 = std::min(c.cx + 1, grid_nx_ - 1);
  const int32_t y0 = std::max(c.cy - 1, 0);
  const int32_t y1 = std::min(c.cy + 1, grid_ny_ - 1);
  for (int32_t cy = y0; cy <= y1; ++cy) {
    for (int32_t cx = x0; cx <= x1; ++cx) {
      // Expired frames are skipped here and reclaimed by PeriodicSweep.
      if (air_cells_[cy * grid_nx_ + cx].AnyAudible(pos, now, range2)) {
        return true;
      }
    }
  }
  return false;
}

void Channel::Transmit(Node* sender, const Packet& packet) {
  AllocScope alloc_scope(&net_allocs_);
  const SimTime now = sim_->Now();
  const double duration = FrameDuration(packet.size_bytes);
  const SimTime end = now + duration;
  const Point origin = sender->Position();

  FrameFault fault;
  if (fault_hook_ && !replaying_fault_) {
    fault = fault_hook_(packet, sender->id());
  }
  if (tracer_ != nullptr && packet.trace.sampled()) {
    if (fault.drop) {
      tracer_->AddEvent(packet.trace, TraceEventKind::kFaultDrop, now,
                        sender->id());
    }
    if (fault.duplicate) {
      tracer_->AddEvent(packet.trace, TraceEventKind::kFaultDuplicate, now,
                        sender->id());
    }
  }

  ++stats_.frames_sent;
  stats_.airtime_s += duration;
  sender->energy().ChargeTx(packet.size_bytes, params_.radio_range_m,
                            packet.category);
  for (const auto& entry : transmit_observers_) {
    entry.second(packet, sender->id(), origin);
  }

  PeriodicSweep();
  {
    // Air-cell occupancy lanes compact in place and only ever grow to the
    // cell's busiest instant: capacity, not per-frame churn.
    AllocScopePause capacity;
    if (params_.use_spatial_grid) {
      air_cells_[CellIndexOf(origin)].Add(origin, end);
    } else {
      PruneAir();
      air_.Add(origin, end);
    }
  }

  if (fault.duplicate) {
    // Re-air an identical copy (same uid) right after this frame clears
    // the air. The replay bypasses the fault hook so a duplicate cannot
    // spawn further duplicates. The copy is parked in a pooled slot so
    // the event captures only {this, sender, handle}.
    const FrameHandle dup = frames_.Acquire();
    frames_.Get(dup)->packet = packet;
    sim_->ScheduleAt(end, [this, sender, dup]() {
      ReplayDuplicate(sender, dup);
    });
  }
  if (fault.drop) return;  // On the air but heard by nobody.
  if (params_.use_spatial_grid) GatherCandidates(origin);

  // All of a frame's receptions complete at the same instant, so they are
  // delivered by one batched event whose only captured state is the
  // frame's pool handle. Receivers are appended in ascending id order,
  // which the batch preserves — the same firing order as scheduling one
  // event per receiver. The slot's flags vector carries every receiver's
  // corruption bit for this frame; batch[i] pairs with flags[i].
  const FrameHandle handle = frames_.Acquire();
  InFlightFrame* frame = frames_.Get(handle);
  frame->packet = packet;

  const double range2 = params_.radio_range_m * params_.radio_range_m;
  const auto scan = [&](const auto& candidates, auto node_of) {
    // Everything the scan appends lives in recycled storage — the slot's
    // flags/batch vectors and the per-receiver reception lanes — so any
    // allocation here is high-water capacity growth, not per-frame churn.
    AllocScopePause capacity;
    for (const auto& candidate : candidates) {
      ++stats_.candidates_scanned;
      Node* receiver = node_of(candidate);
      if (receiver == sender || !receiver->alive()) continue;
      if (SquaredDistance(receiver->Position(), origin) > range2) continue;

      ++stats_.receptions_attempted;

      // Collision check: any reception still in progress at this
      // receiver overlaps the new frame, corrupting both (the new frame
      // always; the ongoing one too unless capture mode preserves it).
      const uint32_t index = static_cast<uint32_t>(frame->flags.size());
      frame->flags.push_back(0);
      const size_t slot = static_cast<size_t>(receiver->id());
      if (slot >= active_receptions_.size()) {
        active_receptions_.resize(slot + 1);
      }
      ReceptionLane& lane = active_receptions_[slot];
      lane.Compact(now);
      for (size_t i = 0; i < lane.end_times.size(); ++i) {
        frame->flags[index] = 1;
        if (!params_.capture) {
          // A reception still in progress always refers to a live slot
          // (its delivery event has not fired yet).
          InFlightFrame* other = frames_.Get(lane.frames[i]);
          assert(other != nullptr);
          other->flags[lane.flag_indices[i]] = 1;
        }
      }
      lane.end_times.push_back(end);
      lane.frames.push_back(handle);
      lane.flag_indices.push_back(index);

      // Independent random loss (fading, external interference).
      const bool randomly_lost = rng_.Bernoulli(params_.loss_rate);
      frame->batch.push_back(Delivery{receiver, randomly_lost});
    }
  };

  if (params_.use_spatial_grid) {
    scan(scratch_, [](const auto& entry) { return entry.second; });
  } else {
    scan(nodes_, [](Node* n) { return n; });
  }
  if (frame->batch.empty()) {
    frames_.Release(handle);
    return;
  }

  sim_->ScheduleAt(end, [this, handle]() { DeliverFrame(handle); });
}

void Channel::ReplayDuplicate(Node* sender, FrameHandle handle) {
  InFlightFrame* frame = frames_.Get(handle);
  assert(frame != nullptr);
  // Copy out and release first: Transmit acquires a slot, which may grow
  // the slab under `frame`.
  const Packet packet = frame->packet;
  frames_.Release(handle);
  if (!sender->alive()) return;
  replaying_fault_ = true;
  Transmit(sender, packet);
  replaying_fault_ = false;
}

void Channel::DeliverFrame(FrameHandle handle) {
  AllocScope alloc_scope(&net_allocs_);
  InFlightFrame* frame = frames_.Get(handle);
  assert(frame != nullptr);
  // Stack copy: receivers' protocol handlers may transmit re-entrantly
  // through deep call chains someday; the pool slot must not be assumed
  // stable across them. The flags/batch arrays are re-resolved instead of
  // copied — they are only read between handler invocations.
  const Packet packet = frame->packet;
  const EnergyCategory category = packet.category;
  const size_t batch_size = frame->batch.size();
  for (size_t i = 0; i < batch_size; ++i) {
    frame = frames_.Get(handle);
    const Delivery d = frame->batch[i];
    // The radio listened for the whole frame either way.
    d.receiver->energy().ChargeRx(packet.size_bytes, category);
    if (frame->flags[i] != 0) {
      ++stats_.receptions_collided;
      if (tracer_ != nullptr && packet.trace.sampled()) {
        tracer_->AddEvent(packet.trace, TraceEventKind::kCollision,
                          sim_->Now(), d.receiver->id());
      }
      continue;
    }
    if (d.randomly_lost) {
      ++stats_.receptions_lost;
      if (tracer_ != nullptr && packet.trace.sampled()) {
        tracer_->AddEvent(packet.trace, TraceEventKind::kFrameLost,
                          sim_->Now(), d.receiver->id());
      }
      continue;
    }
    ++stats_.receptions_delivered;
    d.receiver->HandlePhyReceive(packet);
  }
  frames_.Release(handle);
}

}  // namespace diknn
