#include "net/placement.h"

#include <cmath>

namespace diknn {

std::vector<Point> GeneratePositions(PlacementKind kind, int count,
                                     const Rect& field, Rng& rng,
                                     const ClusterParams& clusters) {
  switch (kind) {
    case PlacementKind::kUniform:
      return UniformPositions(count, field, rng);
    case PlacementKind::kGrid:
      return GridPositions(count, field, rng);
    case PlacementKind::kClustered:
      return ClusteredPositions(count, field, rng, clusters);
  }
  return {};
}

std::vector<Point> UniformPositions(int count, const Rect& field, Rng& rng) {
  std::vector<Point> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) out.push_back(rng.PointInRect(field));
  return out;
}

std::vector<Point> GridPositions(int count, const Rect& field, Rng& rng,
                                 double jitter_fraction) {
  std::vector<Point> out;
  out.reserve(count);
  const int side = static_cast<int>(std::ceil(std::sqrt(count)));
  const double cell_w = field.Width() / side;
  const double cell_h = field.Height() / side;
  for (int i = 0; i < count; ++i) {
    const int cx = i % side;
    const int cy = i / side;
    const double jx = rng.Uniform(-jitter_fraction, jitter_fraction) * cell_w;
    const double jy = rng.Uniform(-jitter_fraction, jitter_fraction) * cell_h;
    Point p{field.min.x + (cx + 0.5) * cell_w + jx,
            field.min.y + (cy + 0.5) * cell_h + jy};
    out.push_back(field.Clamp(p));
  }
  return out;
}

std::vector<Point> ClusteredPositions(int count, const Rect& field, Rng& rng,
                                      const ClusterParams& params) {
  std::vector<Point> out;
  out.reserve(count);
  const int clusters = std::max(1, params.num_clusters);
  std::vector<Point> centers;
  centers.reserve(clusters);
  for (int i = 0; i < clusters; ++i) {
    centers.push_back(rng.PointInRect(field));
  }
  const double sigma =
      params.sigma_fraction * std::min(field.Width(), field.Height());
  for (int i = 0; i < count; ++i) {
    if (rng.Bernoulli(params.background_fraction)) {
      out.push_back(rng.PointInRect(field));
      continue;
    }
    const Point& c = centers[rng.UniformInt(0, clusters - 1)];
    Point p{rng.Normal(c.x, sigma), rng.Normal(c.y, sigma)};
    out.push_back(field.Clamp(p));
  }
  return out;
}

}  // namespace diknn
