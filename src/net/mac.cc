#include "net/mac.h"

#include <cassert>
#include <memory>
#include <utility>

#include "net/node.h"
#include "net/packet_pool.h"
#include "obs/tracer.h"

namespace diknn {

Mac::Mac(Node* node, Channel* channel, Simulator* sim, MacParams params,
         Rng rng)
    : node_(node),
      channel_(channel),
      sim_(sim),
      params_(params),
      rng_(rng),
      next_uid_base_(0) {
  // The duplicate cache is bounded; size its table and FIFO once so
  // steady-state inserts never rehash or grow the ring.
  seen_uids_.reserve(kSeenCapacity + 1);
  seen_order_.reserve(kSeenCapacity + 1);
}

AllocCounters* Mac::net_allocs() const {
  return channel_ != nullptr ? &channel_->net_allocs() : nullptr;
}

void Mac::Send(Packet packet, EnergyCategory category,
               SendCallback callback) {
  // uid layout: node id in the high bits keeps uids globally unique, which
  // the receiver-side duplicate cache relies on.
  packet.uid = (static_cast<uint64_t>(static_cast<uint32_t>(node_->id()))
                << 40) |
               ++next_uid_base_;
  packet.src = node_->id();
  packet.category = category;

  ++stats_.frames_queued;
  queue_.push_back(OutFrame{std::move(packet), category,
                            std::move(callback),
                            params_.max_frame_retries});
  if (!busy_) StartCsma();
}

void Mac::StartCsma() {
  assert(!queue_.empty());
  busy_ = true;
  ++csma_generation_;
  CsmaAttempt(/*backoffs_done=*/0, /*be=*/params_.min_be);
}

void Mac::CsmaAttempt(int backoffs_done, int be) {
  const int max_slots = (1 << be) - 1;
  const double backoff =
      params_.backoff_slot_s * rng_.UniformInt(0, max_slots);
  const uint64_t generation = csma_generation_;
  sim_->ScheduleAfter(backoff, [this, backoffs_done, be, generation]() {
    AllocScope alloc_scope(net_allocs());
    if (generation != csma_generation_) return;  // Superseded round.
    if (queue_.empty() || !node_->alive()) {
      busy_ = false;
      return;
    }
    if (!channel_->IsBusyAt(node_->Position())) {
      TransmitHead();
      return;
    }
    if (backoffs_done + 1 > params_.max_csma_backoffs) {
      // Channel access failure: spend a retry, or give up on the frame.
      ++stats_.csma_failures;
      OutFrame& head = queue_.front();
      Tracer* tracer = channel_->tracer();
      if (tracer != nullptr && head.packet.trace.sampled()) {
        tracer->AddEvent(head.packet.trace, TraceEventKind::kCsmaFailure,
                         sim_->Now(), node_->id());
      }
      if (head.retries_left > 0) {
        --head.retries_left;
        ++stats_.retries;
        if (tracer != nullptr && head.packet.trace.sampled()) {
          tracer->AddEvent(head.packet.trace, TraceEventKind::kMacRetry,
                           sim_->Now(), node_->id(),
                           params_.max_frame_retries - head.retries_left);
        }
        StartCsma();
      } else {
        CompleteHead(false);
      }
      return;
    }
    CsmaAttempt(backoffs_done + 1, std::min(be + 1, params_.max_be));
  });
}

void Mac::TransmitHead() {
  OutFrame& head = queue_.front();
  ++stats_.tx_attempts;
  channel_->Transmit(node_, head.packet);
  const double duration = channel_->FrameDuration(head.packet.size_bytes);

  if (head.packet.IsBroadcast()) {
    // Broadcasts are unacknowledged: done when the frame leaves the air.
    sim_->ScheduleAfter(duration, [this]() {
      AllocScope alloc_scope(net_allocs());
      CompleteHead(true);
    });
    return;
  }

  // Unicast: wait for the MAC ACK.
  awaiting_ack_uid_ = head.packet.uid;
  ack_timeout_event_ = sim_->ScheduleAfter(
      duration + params_.ack_timeout_s, [this]() {
        AllocScope alloc_scope(net_allocs());
        OnAckTimeout();
      });
}

void Mac::OnAckTimeout() {
  awaiting_ack_uid_ = 0;
  ack_timeout_event_ = 0;
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  OutFrame& head = queue_.front();
  if (head.retries_left > 0) {
    --head.retries_left;
    ++stats_.retries;
    Tracer* tracer = channel_->tracer();
    if (tracer != nullptr && head.packet.trace.sampled()) {
      tracer->AddEvent(head.packet.trace, TraceEventKind::kMacRetry,
                       sim_->Now(), node_->id(),
                       params_.max_frame_retries - head.retries_left);
    }
    StartCsma();
  } else {
    CompleteHead(false);
  }
}

void Mac::CompleteHead(bool success) {
  assert(!queue_.empty());
  OutFrame frame = std::move(queue_.front());
  queue_.pop_front();
  ++csma_generation_;  // Invalidate any in-flight backoff events.
  awaiting_ack_uid_ = 0;
  if (ack_timeout_event_ != 0) {
    sim_->Cancel(ack_timeout_event_);
    ack_timeout_event_ = 0;
  }
  if (!success) ++stats_.send_failures;

  if (!queue_.empty()) {
    StartCsma();
  } else {
    busy_ = false;
  }
  // Invoke the callback last: it may enqueue new frames re-entrantly.
  if (frame.callback) frame.callback(success);
}

bool Mac::FilterReceive(const Packet& packet) {
  if (packet.type == MessageType::kMacAck) {
    if (packet.dst == node_->id() && awaiting_ack_uid_ != 0) {
      const auto* ack = static_cast<const AckMessage*>(packet.payload.get());
      if (ack != nullptr && ack->acked_uid == awaiting_ack_uid_) {
        CompleteHead(true);
      }
    }
    return true;  // ACKs never reach the protocol layer.
  }

  if (!packet.IsBroadcast()) {
    if (packet.dst != node_->id()) return true;  // Overheard, discard.

    // Acknowledge after the fixed turnaround, bypassing CSMA (802.15.4
    // ACK behaviour). The ACK is a real frame and may itself collide.
    // Only the scalars needed to rebuild the ACK are captured (the uid is
    // drawn now to keep the uid stream identical to queuing-time
    // assignment); the payload comes from the message pool at send time.
    const uint64_t ack_uid =
        (static_cast<uint64_t>(static_cast<uint32_t>(node_->id())) << 40) |
        ++next_uid_base_;
    sim_->ScheduleAfter(
        params_.ack_turnaround_s,
        [this, dst = packet.src, acked_uid = packet.uid, ack_uid,
         category = packet.category, trace = packet.trace]() {
          if (!node_->alive()) return;
          AllocScope alloc_scope(net_allocs());
          Packet ack;
          ack.src = node_->id();
          ack.dst = dst;
          ack.type = MessageType::kMacAck;
          ack.size_bytes = params_.ack_bytes;
          ack.payload = MessagePool::Make<AckMessage>(acked_uid);
          ack.uid = ack_uid;
          ack.category = category;
          // ACKs inherit the frame's trace tag so their collisions
          // attribute to the same query.
          ack.trace = trace;
          channel_->Transmit(node_, ack);
        });
  }

  // Duplicate suppression (an ACK loss makes the sender retransmit a frame
  // the protocol layer already saw).
  if (seen_uids_.contains(packet.uid)) {
    ++stats_.duplicates_dropped;
    return true;
  }
  seen_uids_.insert(packet.uid);
  seen_order_.push_back(packet.uid);
  if (seen_order_.size() > kSeenCapacity) {
    seen_uids_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return false;
}

}  // namespace diknn
