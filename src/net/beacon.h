// Periodic location beaconing (Section 3.1): every node broadcasts its id,
// position and current speed; receivers maintain neighbor tables from
// heard beacons. Beacon phases are jittered per node so the network does
// not synchronize its transmissions.

#ifndef DIKNN_NET_BEACON_H_
#define DIKNN_NET_BEACON_H_

#include <vector>

#include "net/node.h"
#include "sim/simulator.h"

namespace diknn {

/// Beacon frame body.
struct BeaconMessage : Message {
  NodeId id = kInvalidNodeId;
  Point position;
  double speed = 0.0;
};

/// Over-the-air beacon body size: id + position + speed.
inline constexpr size_t kBeaconBodyBytes =
    kNodeIdBytes + kPositionBytes + 2;

/// Installs periodic beaconing on a set of nodes.
class BeaconService {
 public:
  /// `interval`: paper default 0.5 s. Phases are drawn uniformly in
  /// [0, interval) from `rng`.
  BeaconService(Simulator* sim, std::vector<Node*> nodes, SimTime interval,
                Rng rng);

  /// Starts beaconing (registers handlers and schedules the first round).
  void Start();

  SimTime interval() const { return interval_; }

 private:
  void SendBeacon(Node* node);

  Simulator* sim_;
  std::vector<Node*> nodes_;
  SimTime interval_;
  Rng rng_;
};

}  // namespace diknn

#endif  // DIKNN_NET_BEACON_H_
