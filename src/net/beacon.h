// Periodic location beaconing (Section 3.1): every node broadcasts its id,
// position and current speed; receivers maintain neighbor tables from
// heard beacons. Beacon phases are jittered per node so the network does
// not synchronize its transmissions.
//
// Scheduling: instead of N independent self-rescheduling periodic events
// (one per node, each a heap entry with its own shared-state closure),
// the service keeps one phase-sorted sweep over the fleet and a single
// scheduler entry — the next beacon due. Each firing sends every beacon
// that shares that exact timestamp, advances those entries by one
// interval, and schedules the next due time. Per-node transmit times and
// their relative order are exactly those of the per-node-periodic scheme
// (same RNG draws, same `t + interval` accumulation), so runs are
// bit-identical; the scheduler just carries one resident event instead
// of N.

#ifndef DIKNN_NET_BEACON_H_
#define DIKNN_NET_BEACON_H_

#include <cstdint>
#include <vector>

#include "net/node.h"
#include "sim/simulator.h"

namespace diknn {

/// Beacon frame body.
struct BeaconMessage : Message {
  NodeId id = kInvalidNodeId;
  Point position;
  double speed = 0.0;
};

/// Over-the-air beacon body size: id + position + speed.
inline constexpr size_t kBeaconBodyBytes =
    kNodeIdBytes + kPositionBytes + 2;

/// Installs periodic beaconing on a set of nodes.
class BeaconService {
 public:
  /// `interval`: paper default 0.5 s. Phases are drawn uniformly in
  /// [0, interval) from `rng`.
  BeaconService(Simulator* sim, std::vector<Node*> nodes, SimTime interval,
                Rng rng);

  /// Starts beaconing (registers handlers and schedules the first round).
  void Start();

  SimTime interval() const { return interval_; }

 private:
  /// One fleet entry in the phase-sorted sweep. `next_time` advances by
  /// `interval_` per round with the same floating-point accumulation a
  /// self-rescheduling periodic event would produce.
  struct SweepEntry {
    SimTime next_time;
    uint32_t node_index;
  };

  void SendBeacon(Node* node);
  // Sends every beacon due at the cursor's timestamp, then re-arms.
  void FireSweep();
  // Schedules the single pending event at the cursor entry's due time.
  void ScheduleSweep();

  Simulator* sim_;
  std::vector<Node*> nodes_;
  SimTime interval_;
  Rng rng_;

  std::vector<SweepEntry> schedule_;  // Sorted by (phase, node order).
  size_t cursor_ = 0;
};

}  // namespace diknn

#endif  // DIKNN_NET_BEACON_H_
