// The Network assembles the whole substrate: simulator, channel, nodes
// with mobility, and periodic beaconing. It also provides the ground-truth
// KNN oracle used to score query accuracy.

#ifndef DIKNN_NET_NETWORK_H_
#define DIKNN_NET_NETWORK_H_

#include <memory>
#include <vector>

#include "core/geometry.h"
#include "core/rng.h"
#include "net/beacon.h"
#include "net/channel.h"
#include "net/node.h"
#include "net/placement.h"
#include "sim/simulator.h"

namespace diknn {

/// Mobility selector for network construction.
enum class MobilityKind {
  kStatic,          ///< All nodes stationary.
  kRandomWaypoint,  ///< Paper default (Section 5.1).
  kGroup,           ///< RPGM herds: see GroupMobility.
};

/// Full network configuration; defaults reproduce the paper's Section 5.1
/// parameter table.
struct NetworkConfig {
  int node_count = 200;
  Rect field = Rect::Field(115.0, 115.0);  ///< 115 x 115 m^2 -> degree ~20.
  double radio_range_m = 20.0;
  double bit_rate_bps = 250e3;
  double loss_rate = 0.0;
  /// Serve channel delivery / carrier sensing from the spatial hash grid
  /// (bit-identical to the brute-force scan; see ChannelParams).
  bool use_spatial_grid = true;
  /// Scheduler implementation for this network's simulator. The timer
  /// wheel (default) and the legacy binary heap fire events in an
  /// identical order (docs/ENGINE.md), so runs are bit-identical either
  /// way; the heap is kept for bench_engine A/B runs and the
  /// engine_determinism_test equivalence checks.
  EngineKind scheduler = EngineKind::kWheel;
  SimTime beacon_interval = 0.5;
  SimTime neighbor_timeout = 1.5;
  MobilityKind mobility = MobilityKind::kRandomWaypoint;
  double max_speed = 10.0;  ///< mu_max (m/s).
  // Group (RPGM) mobility parameters, used when mobility == kGroup.
  int group_size = 20;            ///< Members per herd.
  double group_radius = 18.0;     ///< Herd spread (m).
  double group_member_speed = 2.0;///< Local wandering speed (m/s).
  /// The first `static_node_count` nodes stay stationary regardless of
  /// the mobility model. Used to pin the query sink: the sink of a WSN is
  /// the base station, which does not wander off while results are in
  /// flight (sensor mobility is what the paper varies).
  int static_node_count = 0;
  PlacementKind placement = PlacementKind::kUniform;
  ClusterParams clusters;
  /// When non-empty, overrides `placement` (and `node_count`) with these
  /// exact initial positions. Used by tests and the Fig. 7 demo to build
  /// hand-crafted topologies.
  std::vector<Point> explicit_positions;
  EnergyParams energy;
  MacParams mac;
  uint64_t seed = 1;
  /// Static infrastructure nodes appended after the mobile ones (ids
  /// node_count, node_count+1, ...). Used for Peer-tree clusterheads.
  std::vector<Point> infrastructure_positions;
};

/// An assembled simulated sensor network.
class Network {
 public:
  explicit Network(const NetworkConfig& config);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& sim() { return sim_; }
  Channel& channel() { return *channel_; }
  const NetworkConfig& config() const { return config_; }

  int size() const { return static_cast<int>(nodes_.size()); }
  Node* node(NodeId id) { return nodes_[id].get(); }
  const Node* node(NodeId id) const { return nodes_[id].get(); }

  /// Pointers to all nodes (stable for the network's lifetime).
  std::vector<Node*> AllNodes();

  /// Starts beaconing and runs the simulator for `duration` so neighbor
  /// tables are populated before any query is issued.
  void Warmup(SimTime duration = 1.5);

  /// Ground-truth oracle: ids of the k live nodes nearest to `q` right
  /// now, by true (not beacon-stale) position. Ties broken by id.
  /// Non-const: evaluating a mobility model lazily advances its leg state.
  std::vector<NodeId> TrueKnn(const Point& q, int k);

  /// The live node whose true position is nearest to `q`.
  NodeId TrueNearestNode(const Point& q);

  /// Sum of a category's energy across all nodes (Joules).
  double TotalEnergy(EnergyCategory category) const;

  /// Sum of all energy across all nodes (Joules).
  double TotalEnergy() const;

  /// Average fresh-neighbor count over all live nodes (the "node degree"
  /// knob of Section 5.1).
  double AverageDegree();

 private:
  NetworkConfig config_;
  Simulator sim_;
  Rng rng_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<BeaconService> beacons_;
};

}  // namespace diknn

#endif  // DIKNN_NET_NETWORK_H_
