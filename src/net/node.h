// A simulated sensor node: position, radio, neighbor table, energy meter,
// and a registry of protocol handlers.

#ifndef DIKNN_NET_NODE_H_
#define DIKNN_NET_NODE_H_

#include <array>
#include <functional>
#include <memory>
#include <utility>

#include "core/geometry.h"
#include "core/rng.h"
#include "net/channel.h"
#include "net/energy_model.h"
#include "net/mac.h"
#include "net/mobility.h"
#include "net/neighbor_table.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace diknn {

/// Per-node configuration.
struct NodeParams {
  EnergyParams energy;
  MacParams mac;
  SimTime neighbor_timeout = 1.5;  ///< 3x the default 0.5 s beacon period.
};

/// One sensor node. Owned by the Network; protocols interact with nodes
/// through this interface and never touch the channel or MAC directly.
class Node {
 public:
  /// Handler invoked for received protocol frames of a registered type.
  using Handler = std::function<void(const Packet&)>;

  Node(NodeId id, Simulator* sim, Channel* channel,
       std::unique_ptr<MobilityModel> mobility, const NodeParams& params,
       Rng rng);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  Simulator* sim() { return sim_; }

  /// The shared medium this node is attached to (nullptr in detached test
  /// rigs). Gives the MAC and beacon layers access to the channel's
  /// packet-plane allocation scope.
  Channel* channel() const { return channel_; }

  /// True position right now (nodes are location-aware per Section 3.1).
  Point Position() const {
    return position_pinned_ ? pinned_position_
                            : mobility_->PositionAt(sim_->Now());
  }

  /// Current scalar speed (m/s).
  double Speed() const {
    return position_pinned_ ? 0.0 : mobility_->SpeedAt(sim_->Now());
  }

  /// Lifetime upper bound on this node's speed (m/s); the channel's
  /// spatial grid sizes its cells from the fleet-wide maximum.
  double MaxSpeed() const { return mobility_->MaxSpeed(); }

  NeighborTable& neighbors() { return neighbors_; }
  const NeighborTable& neighbors() const { return neighbors_; }
  EnergyMeter& energy() { return energy_; }
  const EnergyMeter& energy() const { return energy_; }
  Mac& mac() { return mac_; }
  const Mac& mac() const { return mac_; }
  Rng& rng() { return rng_; }

  /// Failure injection: a dead node neither transmits nor receives.
  bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

  /// Fault injection: pins the node at `p` — Position() returns `p` and
  /// Speed() 0 until the pin is cleared — and re-buckets the channel's
  /// spatial grid (a teleport can cross cells instantly). Used to freeze
  /// or teleport the sink mid-run.
  void PinPosition(const Point& p);

  /// Resumes the mobility model from its own (lazily advanced) trajectory.
  void ClearPinnedPosition();

  bool position_pinned() const { return position_pinned_; }

  /// Infrastructure nodes (e.g. Peer-tree's stationary clusterheads) take
  /// part in the network but are not KNN candidates and are excluded from
  /// the ground-truth oracle.
  bool is_infrastructure() const { return infrastructure_; }
  void set_infrastructure(bool value) { infrastructure_ = value; }

  /// Registers the handler for a message type, replacing any previous one.
  void RegisterHandler(MessageType type, Handler handler);

  /// Sends a unicast frame to `dst` carrying `payload`. `body_bytes` is the
  /// modeled payload size; the MAC header is added automatically. The
  /// optional callback reports delivery success after MAC retries. `trace`
  /// attributes the frame (and its MAC retries/collisions) to a traced
  /// query; it is metadata and never affects the modeled size.
  void SendUnicast(NodeId dst, MessageType type,
                   std::shared_ptr<const Message> payload, size_t body_bytes,
                   EnergyCategory category, Mac::SendCallback callback = {},
                   TraceContext trace = {});

  /// Sends a one-hop broadcast (unacknowledged).
  void SendBroadcast(MessageType type, std::shared_ptr<const Message> payload,
                     size_t body_bytes, EnergyCategory category,
                     Mac::SendCallback callback = {}, TraceContext trace = {});

  /// Entry point from the Channel when a frame reaches this node's radio.
  void HandlePhyReceive(const Packet& packet);

 private:
  NodeId id_;
  Simulator* sim_;
  Channel* channel_;
  std::unique_ptr<MobilityModel> mobility_;
  NeighborTable neighbors_;
  EnergyMeter energy_;
  Rng rng_;
  Mac mac_;
  bool alive_ = true;
  bool infrastructure_ = false;
  bool position_pinned_ = false;
  Point pinned_position_;
  // Dispatch table indexed by MessageType value: receive dispatch is an
  // array load instead of a tree walk, and registration order can never
  // influence behavior (there is nothing to iterate).
  std::array<Handler, kMessageTypeSpan> handlers_;
};

}  // namespace diknn

#endif  // DIKNN_NET_NODE_H_
