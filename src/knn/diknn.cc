#include "knn/diknn.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/logging.h"
#include "net/packet_pool.h"
#include "obs/tracer.h"

namespace diknn {

namespace {

/// Wire sizes (bytes) of the fixed parts of each message.
constexpr size_t kQueryFixedBytes = 26;   // q, k, id, sink id+pos, g.
constexpr size_t kProbeBytes = 32;        // id, sector, q, R, pos, ref, win.
constexpr size_t kRendezvousBytes = 12;   // id, sector, ring, explored.
constexpr size_t kCandidateBytes = 12;    // id, pos, speed.

/// Interpolated estimate of nodes explored across *all* sectors from the
/// subset whose counts are known (the "simple bilinear interpolation" of
/// Section 4.3).
int EstimateTotalExplored(const std::vector<int>& sector_explored) {
  int sum = 0;
  int known = 0;
  for (int v : sector_explored) {
    if (v >= 0) {
      sum += v;
      ++known;
    }
  }
  if (known == 0) return 0;
  return static_cast<int>(
      static_cast<double>(sum) * sector_explored.size() / known);
}

}  // namespace

size_t Diknn::SectorState::WireBytes() const {
  return kQueryFixedBytes + 12 /* sector, radius, progress, flags, ts */ +
         best.size() * kCandidateBytes + 2 /* explored */ +
         2 /* max speed */ + sector_explored.size() * 2;
}

Diknn::Diknn(Network* network, GpsrRouting* gpsr, DiknnParams params)
    : network_(network), gpsr_(gpsr), params_(params) {
  assert(params_.num_sectors >= 1);
}

double Diknn::EffectiveWidth() const {
  return params_.width > 0.0
             ? params_.width
             : DefaultItineraryWidth(network_->config().radio_range_m);
}

double Diknn::MaxBoundaryRadius() const {
  const Rect& field = network_->config().field;
  const double half_diagonal =
      0.5 * std::hypot(field.Width(), field.Height());
  return params_.max_radius_factor * half_diagonal;
}

Itinerary& Diknn::RebuildItinerary(const SectorState& state) {
  ItineraryParams ip;
  ip.q = state.query.q;
  ip.radius = state.radius;
  ip.sector = state.sector;
  ip.num_sectors = params_.num_sectors;
  ip.width = EffectiveWidth();
  ip.extra_rings = state.extra_rings;
  itinerary_scratch_.Rebuild(ip);
  return itinerary_scratch_;
}

FlatSet<NodeId>& Diknn::RepliedFor(uint64_t query_id) {
  auto [kv, inserted] = replied_.TryEmplace(query_id);
  if (inserted && !replied_freelist_.empty()) {
    // A retired query's dedup set, already cleared: its grown table
    // makes this query's inserts rehash-free from the start.
    kv->second = std::move(replied_freelist_.back());
    replied_freelist_.pop_back();
  }
  return kv->second;
}

void Diknn::RecycleReplied(uint64_t query_id) {
  FlatSet<NodeId>* replied = replied_.find(query_id);
  if (replied == nullptr) return;
  replied->clear();
  replied_freelist_.push_back(std::move(*replied));
  replied_.erase(query_id);
}

void Diknn::RecycleReplies(std::vector<KnnCandidate>* replies) {
  replies->clear();
  replies_freelist_.push_back(std::move(*replies));
}

void Diknn::Install() {
  gpsr_->RegisterDelivery(
      MessageType::kDiknnQuery,
      [this](Node* node, const GeoRoutedMessage& msg) {
        AllocScope scope(&knn_allocs_);
        OnHomeNodeArrival(node, msg);
      });
  gpsr_->RegisterDelivery(
      MessageType::kDiknnResult,
      [this](Node* node, const GeoRoutedMessage& msg) {
        AllocScope scope(&knn_allocs_);
        OnSectorResult(node, msg);
      });

  for (Node* node : network_->AllNodes()) {
    node->RegisterHandler(
        MessageType::kDiknnProbe, [this, node](const Packet& p) {
          AllocScope scope(&knn_allocs_);
          OnProbe(node, *static_cast<const ProbeMessage*>(p.payload.get()));
        });
    node->RegisterHandler(
        MessageType::kDiknnDataReply, [this, node](const Packet& p) {
          AllocScope scope(&knn_allocs_);
          OnReply(node, *static_cast<const ReplyMessage*>(p.payload.get()));
        });
    node->RegisterHandler(
        MessageType::kDiknnForward, [this, node](const Packet& p) {
          AllocScope scope(&knn_allocs_);
          const auto* fwd =
              static_cast<const ForwardMessage*>(p.payload.get());
          // The received payload is shared and immutable; the traversal
          // continues in a recycled pool object whose vector capacity
          // survives from earlier hops.
          auto copy = MessagePool::MakeReusable<ForwardMessage>();
          copy->state = fwd->state;
          StartQNode(node, std::move(copy));
        });
    node->RegisterHandler(
        MessageType::kDiknnRendezvous, [this, node](const Packet& p) {
          AllocScope scope(&knn_allocs_);
          OnRendezvous(
              node, *static_cast<const RendezvousMessage*>(p.payload.get()));
        });
  }
}

void Diknn::IssueQuery(NodeId sink, Point q, int k, ResultHandler handler) {
  AllocScope scope(&knn_allocs_);
  Node* sink_node = network_->node(sink);
  KnnQuery query;
  query.id = next_query_id_++;
  query.q = q;
  query.k = std::max(1, k);
  query.sink = sink;
  query.sink_position = sink_node->Position();
  query.assurance_gain = params_.assurance_gain;

  PendingQuery pending;
  pending.query = query;
  pending.handler = std::move(handler);
  pending.issued_at = network_->sim().Now();
  if (tracer_ != nullptr) {
    // Join the workload driver's ambient trace when one is open (the
    // driver's root span then covers queueing ahead of the protocol);
    // otherwise this query is its own trace root (paper-style launch).
    if (tracer_->has_ambient()) {
      pending.trace = tracer_->ambient();
    } else {
      pending.trace = tracer_->StartQuery(pending.issued_at);
      pending.owns_trace = true;
    }
    pending.route_span = tracer_->BeginSpan(pending.trace, SpanKind::kRoute,
                                            pending.issued_at, -1, sink);
  }
  const TraceContext route_ctx{pending.trace.trace_id, pending.route_span};
  const uint64_t id = query.id;
  pending.timeout_event = network_->sim().ScheduleAfter(
      params_.query_timeout, [this, id]() { CompleteQuery(id, true); });
  pending_.TryEmplace(id, std::move(pending));
  ++stats_.queries_issued;

  auto bootstrap = MessagePool::Make<QueryBootstrap>();
  bootstrap->query = query;
  gpsr_->Send(sink_node, q, MessageType::kDiknnQuery, std::move(bootstrap),
              kQueryFixedBytes, EnergyCategory::kQuery,
              /*collect_info=*/true, kInvalidNodeId,
              /*cheap_delivery=*/false, route_ctx);
}

void Diknn::OnHomeNodeArrival(Node* node, const GeoRoutedMessage& msg) {
  const auto* bootstrap =
      static_cast<const QueryBootstrap*>(msg.inner.get());
  const KnnQuery& query = bootstrap->query;
  // The query may have timed out while the bootstrap was still routing
  // (partitioned or heavily faulted network); spawning sectors for it
  // would create state no completion ever erases.
  if (!QueryActive(query.id)) {
    ++stats_.stale_branches_dropped;
    return;
  }
  ++stats_.home_node_arrivals;

  TraceContext root_ctx;
  if (tracer_ != nullptr) {
    PendingQuery* pending = pending_.find(query.id);
    if (pending != nullptr && pending->trace.sampled()) {
      root_ctx = pending->trace;
      tracer_->EndSpan(root_ctx.trace_id, pending->route_span,
                       network_->sim().Now());
    }
  }

  // Phase 2: KNN boundary estimation over the gathered list L.
  const KnnbResult knnb =
      Knnb(msg.info_list, query.q, network_->config().radio_range_m,
           query.k, MaxBoundaryRadius(), params_.knnb_area_model);
  stats_.knnb_radius_sum += knnb.radius;
  ++stats_.knnb_runs;

  // Phase 3: spawn the S sub-itineraries concurrently. The home node's
  // own reading seeds the sector containing it; every other in-boundary
  // node is harvested by the probes of the sector Q-nodes (the first
  // Q-node of each sector sits within radio range of q, so the area
  // around the query point stays covered).
  const SimTime ts = network_->sim().Now();
  const SectorPartition sectors(query.q, params_.num_sectors);
  const int home_sector = sectors.SectorOf(node->Position());
  for (int s = 0; s < params_.num_sectors; ++s) {
    auto fwd = MessagePool::MakeReusable<ForwardMessage>();
    SectorState& state = fwd->state;
    state.query = query;
    state.sector = s;
    state.radius = knnb.radius;
    state.dissemination_start = ts;
    state.sector_explored.assign(params_.num_sectors, -1);
    if (root_ctx.sampled()) {
      state.trace = TraceContext{
          root_ctx.trace_id,
          tracer_->BeginSpan(root_ctx, SpanKind::kSector, ts, s, node->id())};
    }
    if (s == home_sector && !node->is_infrastructure()) {
      KnnCandidate self;
      self.id = node->id();
      self.position = node->Position();
      self.speed = node->Speed();
      self.sampled_at = ts;
      state.best.push_back(self);
      state.explored = 1;
      RepliedFor(query.id).insert(node->id());
    }
    state.sector_explored[s] = state.explored;
    ForwardAlongItinerary(node, std::move(fwd));
  }
}

void Diknn::StartQNode(Node* node, std::shared_ptr<ForwardMessage> fwd) {
  SectorState& state = fwd->state;
  // A forward that arrives after CompleteQuery tore the query down is a
  // straggler; processing it would re-insert last_hop_seen_ / collection
  // entries that nothing erases anymore.
  if (!QueryActive(state.query.id)) {
    ++stats_.stale_branches_dropped;
    return;
  }
  // Suppress duplicate traversal branches (ACK-loss forks).
  {
    const uint64_t key = CollectionKey(state.query.id, state.sector);
    auto [kv, inserted] = last_hop_seen_.TryEmplace(key, state.hop_count);
    if (!inserted) {
      if (state.hop_count <= kv->second) return;
      kv->second = state.hop_count;
    }
  }
  ++stats_.qnode_hops;
  if (hop_observer_) {
    hop_observer_(state.query.id, state.sector, node->Position());
  }

  // One hop span per Q-node visit, with the collection window nested
  // inside it; both close when the window finishes.
  SpanId hop_span = 0;
  SpanId collection_span = 0;
  if (tracer_ != nullptr && state.trace.sampled()) {
    const SimTime tnow = network_->sim().Now();
    hop_span = tracer_->BeginSpan(state.trace, SpanKind::kHop, tnow,
                                  state.sector, node->id());
    collection_span = tracer_->BeginSpan(
        TraceContext{state.trace.trace_id, hop_span}, SpanKind::kCollection,
        tnow, state.sector, node->id());
  }
  const TraceContext probe_ctx{state.trace.trace_id, collection_span};

  // The probe's collection radius follows the itinerary's actual
  // coverage: dynamic ring extensions walk beyond the original KNNB
  // boundary, and the nodes out there must answer too.
  const double collect_radius =
      std::max(state.radius,
               RebuildItinerary(state).CoverageRadius() +
                   EffectiveWidth() / 2);

  // Collection scheduling (Section 3.3 + footnote 1). The known
  // in-boundary neighbors form the precedence list, nearest to q first;
  // unknown nodes (table staleness) get the contention tail. Only *new*
  // D-nodes reply — each node answers one probe per query, and a Q-node's
  // disk overlaps its predecessor's by roughly half at the default step —
  // so the contention budget is about half the neighborhood.
  const SimTime now = network_->sim().Now();
  std::vector<NeighborEntry>& in_boundary = in_boundary_scratch_;
  in_boundary.clear();
  node->neighbors().ForEachFresh(now, [&](const NeighborEntry& n) {
    if (Distance(n.position, state.query.q) <= collect_radius) {
      in_boundary.push_back(n);
    }
  });
  const double m = params_.time_unit;
  auto probe = MessagePool::MakeReusable<ProbeMessage>();
  double window = 0.0;
  switch (params_.collection_scheme) {
    case CollectionScheme::kContention: {
      const int expected =
          std::clamp(static_cast<int>(in_boundary.size()) / 2 + 1, 3, 20);
      window = m * expected;
      probe->tail_start = 0.0;  // Whole window is the contention range.
      break;
    }
    case CollectionScheme::kPrecedenceList:
    case CollectionScheme::kHybrid: {
      std::sort(in_boundary.begin(), in_boundary.end(),
                [&](const NeighborEntry& a, const NeighborEntry& b) {
                  return SquaredDistance(a.position, state.query.q) <
                         SquaredDistance(b.position, state.query.q);
                });
      // Budget slots for about half the list: the predecessor's probe
      // already harvested the overlap, so most early slots go unused if
      // every known neighbor gets one.
      const int slots =
          std::min<int>(12, static_cast<int>(in_boundary.size()));
      probe->precedence.reserve(slots);
      for (int i = 0; i < slots; ++i) {
        probe->precedence.push_back(in_boundary[i].id);
      }
      probe->tail_start = m * std::max(1, slots);
      const int tail_slots =
          params_.collection_scheme == CollectionScheme::kHybrid
              ? std::max(3, slots / 3)
              : 0;
      window = probe->tail_start + m * tail_slots;
      break;
    }
  }

  probe->query_id = state.query.id;
  probe->sector = state.sector;
  probe->q = state.query.q;
  probe->radius = collect_radius;
  probe->qnode_position = node->Position();
  probe->reference_angle = AngleOf(node->Position(), state.query.q);
  probe->window = window;
  probe->trace = probe_ctx;

  const uint64_t key = CollectionKey(state.query.id, state.sector);
  // An ACK-loss fork can open a second collection for the same sector
  // while a predecessor's window is still pending; cancel the stale
  // window so its finish event cannot close the new collection early.
  if (Collection* stale = collections_.find(key)) {
    network_->sim().Cancel(stale->finish_event);
    RecycleReplies(&stale->replies);
    collections_.erase(key);
    ++stats_.collections_cancelled;
  }
  Collection collection;
  collection.fwd = std::move(fwd);
  collection.qnode = node->id();
  collection.hop_span = hop_span;
  collection.collection_span = collection_span;
  if (!replies_freelist_.empty()) {
    collection.replies = std::move(replies_freelist_.back());
    replies_freelist_.pop_back();
  }

  const size_t probe_bytes =
      kProbeBytes + probe->precedence.size() * kNodeIdBytes;
  node->SendBroadcast(MessageType::kDiknnProbe, std::move(probe),
                      probe_bytes, EnergyCategory::kQuery, {}, probe_ctx);
  ++stats_.probes_sent;

  // Guard interval: the last D-node's reply still needs its own air time
  // and potential MAC retries after the window closes.
  const double guard = 5.0 * params_.time_unit;
  collection.finish_event = network_->sim().ScheduleAfter(
      window + guard, [this, key]() { FinishCollection(key); });
  collections_.InsertOrAssign(key, std::move(collection));
}

void Diknn::OnProbe(Node* node, const ProbeMessage& probe) {
  // Only non-infrastructure nodes inside the boundary are D-nodes.
  if (node->is_infrastructure()) return;
  if (Distance(node->Position(), probe.q) > probe.radius) return;
  // A probe heard after its query completed must not touch replied_:
  // RepliedFor below would resurrect an entry CompleteQuery just erased.
  if (!QueryActive(probe.query_id)) {
    ++stats_.stale_branches_dropped;
    return;
  }

  FlatSet<NodeId>& replied = RepliedFor(probe.query_id);
  if (replied.contains(node->id())) return;
  replied.insert(node->id());

  // Reply scheduling: a node on the probe's precedence list takes its
  // token-ring slot (index * m); everyone else contends by angle — the
  // delay is proportional to the angle between the probe's reference
  // line and the Q-node->D-node line — inside the tail window. A pure
  // precedence probe (no tail) silences unlisted nodes; a pure
  // contention probe (tail_start = 0) has no slots.
  double delay = -1.0;
  if (!probe.precedence.empty()) {
    const auto it = std::find(probe.precedence.begin(),
                              probe.precedence.end(), node->id());
    if (it != probe.precedence.end()) {
      const double slot = probe.tail_start / probe.precedence.size();
      delay = slot * (it - probe.precedence.begin());
    }
  }
  if (delay < 0.0) {
    if (probe.tail_start >= probe.window) {
      replied.erase(node->id());
      return;  // Pure precedence list: unlisted nodes stay silent.
    }
    const double alpha = NormalizeAngle(
        AngleOf(probe.qnode_position, node->Position()) -
        probe.reference_angle);
    delay = probe.tail_start +
            (alpha / kTwoPi) * (probe.window - probe.tail_start);
  }

  const uint64_t query_id = probe.query_id;
  const int sector = probe.sector;
  const TraceContext probe_ctx = probe.trace;
  network_->sim().ScheduleAfter(delay, [this, node, query_id, sector,
                                        probe_ctx]() {
    AllocScope scope(&knn_allocs_);
    if (!node->alive()) return;
    auto reply = MessagePool::Make<ReplyMessage>();
    reply->query_id = query_id;
    reply->sector = sector;
    reply->candidate.id = node->id();
    reply->candidate.position = node->Position();
    reply->candidate.speed = node->Speed();
    reply->candidate.sampled_at = network_->sim().Now();
    // The collection owner may have moved on; look it up at send time. If
    // the window already closed (or the unicast fails), un-mark the node
    // so a later probe of the same query can still harvest it. The
    // un-marking uses find(): the query may have completed meanwhile, and
    // RepliedFor would re-insert an empty set that nothing ever cleans,
    // growing replied_ unboundedly across queries.
    Collection* collection = collections_.find(CollectionKey(query_id,
                                                             sector));
    if (collection == nullptr) {
      if (FlatSet<NodeId>* r = replied_.find(query_id)) {
        r->erase(node->id());
      }
      return;
    }
    node->SendUnicast(collection->qnode, MessageType::kDiknnDataReply,
                      std::move(reply), kQueryResponseBytes,
                      EnergyCategory::kQuery,
                      [this, query_id, node](bool success) {
                        if (success) return;
                        AllocScope retry_scope(&knn_allocs_);
                        if (FlatSet<NodeId>* r = replied_.find(query_id)) {
                          r->erase(node->id());
                        }
                      },
                      probe_ctx);
    ++stats_.replies_sent;
  });
}

void Diknn::OnReply(Node* node, const ReplyMessage& reply) {
  Collection* collection =
      collections_.find(CollectionKey(reply.query_id, reply.sector));
  if (collection == nullptr || collection->qnode != node->id()) return;
  collection->replies.push_back(reply.candidate);
  if (tracer_ != nullptr && collection->fwd->state.trace.sampled()) {
    tracer_->AddEvent(TraceContext{collection->fwd->state.trace.trace_id,
                                   collection->collection_span},
                      TraceEventKind::kReply, network_->sim().Now(),
                      reply.candidate.id);
  }
}

void Diknn::OnRendezvous(Node* node, const RendezvousMessage& msg) {
  // Statistics for a completed query can never be merged again; buffering
  // them would leave residue until the age-based eviction below.
  if (!QueryActive(msg.query_id)) {
    ++stats_.stale_branches_dropped;
    return;
  }
  std::vector<HeardRendezvous>& heard = heard_rendezvous_[node->id()];
  const SimTime now = network_->sim().Now();
  // Bound the per-node buffer: drop stale entries (older than any query
  // could still be running).
  std::erase_if(heard, [&](const HeardRendezvous& h) {
    return now - h.heard_at > params_.query_timeout;
  });
  heard.push_back(HeardRendezvous{msg, now});
}

void Diknn::FinishCollection(uint64_t key) {
  AllocScope scope(&knn_allocs_);
  Collection* found = collections_.find(key);
  if (found == nullptr) return;
  Collection collection = std::move(*found);
  collections_.erase(key);

  Node* node = network_->node(collection.qnode);
  SectorState& state = collection.fwd->state;
  const KnnQuery& query = state.query;
  const bool traced = tracer_ != nullptr && state.trace.sampled();
  if (traced) {
    const SimTime tnow = network_->sim().Now();
    tracer_->EndSpan(state.trace.trace_id, collection.collection_span, tnow);
    tracer_->EndSpan(state.trace.trace_id, collection.hop_span, tnow);
  }

  // The Q-node is a sensor too: contribute its own reading once.
  FlatSet<NodeId>& replied = RepliedFor(query.id);
  if (!node->is_infrastructure() && !replied.contains(node->id())) {
    replied.insert(node->id());
    KnnCandidate self;
    self.id = node->id();
    self.position = node->Position();
    self.speed = node->Speed();
    self.sampled_at = network_->sim().Now();
    collection.replies.push_back(self);
  }

  // Merge the collected replies.
  for (const KnnCandidate& c : collection.replies) {
    state.best.push_back(c);
    state.max_speed_seen = std::max(state.max_speed_seen, c.speed);
  }
  state.explored += static_cast<int>(collection.replies.size());
  PruneCandidates(&state.best, query.q, query.k);
  state.sector_explored[state.sector] = state.explored;
  RecycleReplies(&collection.replies);

  // Rendezvous and dynamic boundary adjustment (Section 4.3). Heard
  // statistics merge at every Q-node; the broadcast itself happens at
  // ring transitions (where adjacent sectors' adj-segments meet).
  const int ring = RebuildItinerary(state).RingAt(state.progress);
  if (params_.rendezvous) {
    if (ring != state.last_rendezvous_ring) {
      state.last_rendezvous_ring = ring;
      auto rendezvous = MessagePool::Make<RendezvousMessage>();
      rendezvous->query_id = query.id;
      rendezvous->sector = state.sector;
      rendezvous->ring = ring;
      rendezvous->explored = state.explored;
      node->SendBroadcast(MessageType::kDiknnRendezvous,
                          std::move(rendezvous), kRendezvousBytes,
                          EnergyCategory::kQuery, {}, state.trace);
      ++stats_.rendezvous_sent;
      if (traced) {
        tracer_->AddEvent(state.trace, TraceEventKind::kRendezvous,
                          network_->sim().Now(), node->id(), ring);
      }
    }
    if (AdjustBoundary(node, &state, ring)) {
      if (traced) {
        tracer_->AddEvent(state.trace, TraceEventKind::kBoundaryTruncated,
                          network_->sim().Now(), node->id(), ring);
      }
      FinishSector(node, &state);
      return;
    }
  }

  ForwardAlongItinerary(node, std::move(collection.fwd));
}

bool Diknn::AdjustBoundary(Node* node, SectorState* state, int ring) {
  // Merge statistics heard from adjacent sub-itineraries at rendezvous.
  const std::vector<HeardRendezvous>* heard =
      heard_rendezvous_.find(node->id());
  if (heard != nullptr) {
    for (const HeardRendezvous& h : *heard) {
      if (h.msg.query_id != state->query.id) continue;
      if (h.msg.sector == state->sector) continue;
      int& slot = state->sector_explored[h.msg.sector];
      slot = std::max(slot, h.msg.explored);
      ++stats_.rendezvous_merged;
    }
  }

  // Stop early once the interpolated network-wide exploration already
  // covers k nodes ("itinerary traversals can stop immediately if k
  // nearest neighbors are discovered before reaching the perimeter").
  // `ring` is the ring being *entered*; only rings before it have been
  // fully swept, and the k nearest are guaranteed inside the swept region
  // only if at least one full ring beyond the init segment is done.
  const int completed_rings = ring - 1;
  if (completed_rings >= 1 &&
      EstimateTotalExplored(state->sector_explored) >= state->query.k) {
    ++stats_.boundary_truncations;
    return true;
  }
  return false;
}

void Diknn::ForwardAlongItinerary(Node* node,
                                  std::shared_ptr<ForwardMessage> fwd) {
  SectorState& state = fwd->state;
  // Stale traversal work: the query completed (or timed out) while this
  // branch was still in flight. Dropping it here, instead of letting it
  // probe its way to the sink, is what keeps timed-out queries from
  // burning energy for results nobody will read.
  if (!QueryActive(state.query.id)) {
    ++stats_.stale_branches_dropped;
    return;
  }
  // A Q-node killed between receiving the state and acting on it (churn,
  // fault injection) must not keep routing.
  const bool traced = tracer_ != nullptr && state.trace.sampled();
  if (!node->alive()) {
    ++stats_.dead_node_drops;
    if (traced) {
      tracer_->AddEvent(state.trace, TraceEventKind::kDeadNodeDrop,
                        network_->sim().Now(), node->id());
    }
    return;
  }
  const SimTime now = network_->sim().Now();
  const double step = params_.step_fraction * network_->config().radio_range_m;

  // `itinerary` is the member scratch; in-loop boundary adjustments
  // rebuild it in place (same object, no reseating needed).
  Itinerary& itinerary = RebuildItinerary(state);
  double next_s = state.progress + step;
  int skips = 0;

  while (true) {
    if (next_s > itinerary.TotalLength()) {
      // Reached the end of the sub-itinerary. First: continue if the
      // rendezvous statistics say too few nodes were found (boundary
      // under-estimate / spatial irregularity).
      if (params_.rendezvous && state.extra_rings < params_.max_extra_rings &&
          EstimateTotalExplored(state.sector_explored) < state.query.k) {
        ++state.extra_rings;
        ++stats_.boundary_extensions;
        if (traced) {
          tracer_->AddEvent(state.trace, TraceEventKind::kBoundaryExtended,
                            now, node->id(), state.extra_rings);
        }
        RebuildItinerary(state);
        continue;
      }
      // Second: the mobility assurance expansion R' = R + g*(te-ts)*mu
      // (Section 4.3), applied once by the last Q-node.
      if (params_.mobility_assurance && !state.assurance_applied) {
        state.assurance_applied = true;
        const double expansion = state.query.assurance_gain *
                                 (now - state.dissemination_start) *
                                 state.max_speed_seen;
        if (expansion > EffectiveWidth() / 2.0) {
          state.radius += expansion;
          ++stats_.assurance_expansions;
          if (traced) {
            tracer_->AddEvent(state.trace, TraceEventKind::kAssuranceExpanded,
                              now, node->id(), expansion);
          }
          RebuildItinerary(state);
          if (next_s <= itinerary.TotalLength()) continue;
        }
      }
      FinishSector(node, &state);
      return;
    }

    // Anchors outside the deployment field are known-empty: glide past
    // them along the conceptual path without spending void-skip budget
    // (boundary circles near the field edge always have such dead arcs).
    const Rect& field = network_->config().field;
    bool exhausted = false;
    Point anchor = itinerary.PointAt(next_s);
    while (!field.Contains(anchor)) {
      next_s += step;
      if (next_s > itinerary.TotalLength()) {
        exhausted = true;
        break;
      }
      anchor = itinerary.PointAt(next_s);
    }
    if (exhausted) continue;  // End-of-itinerary handling at loop top.

    // Pick the neighbor closest to the next anchor point that actually
    // makes progress toward it.
    NodeId next_id = kInvalidNodeId;
    double best_d = Distance(node->Position(), anchor);
    const double tolerance = EffectiveWidth() / 2.0;
    node->neighbors().ForEachFresh(now, [&](const NeighborEntry& n) {
      const double d = Distance(n.position, anchor);
      if (d < best_d || d <= tolerance) {
        if (next_id == kInvalidNodeId || d < best_d) {
          best_d = d;
          next_id = n.id;
        }
      }
    });

    if (next_id == kInvalidNodeId) {
      // Itinerary void: skip ahead along the conceptual path (perimeter
      // forwarding stand-in; see Fig. 7 discussion).
      ++stats_.voids_encountered;
      ++state.void_skips_total;
      ++skips;
      if (traced) {
        tracer_->AddEvent(state.trace, TraceEventKind::kVoidSkip, now,
                          node->id(), next_s);
      }
      if (skips > params_.max_void_skips) {
        ++stats_.sectors_abandoned;
        FinishSector(node, &state);
        return;
      }
      next_s += step;
      continue;
    }

    // Forward the state to the chosen next Q-node. The pre-advance copy
    // rides in its own pooled envelope, released unused on success.
    auto retry = MessagePool::MakeReusable<ForwardMessage>();
    retry->state = state;
    state.progress = next_s;
    ++state.hop_count;
    const TraceContext fwd_ctx = state.trace;
    const size_t bytes = state.WireBytes();
    node->SendUnicast(
        next_id, MessageType::kDiknnForward, std::move(fwd), bytes,
        EnergyCategory::kQuery,
        [this, node, next_id, retry](bool success) mutable {
          if (success) return;
          AllocScope scope(&knn_allocs_);
          SectorState& retry_state = retry->state;
          const bool retraced =
              tracer_ != nullptr && retry_state.trace.sampled();
          // A node killed by churn mid-retry must not keep routing
          // (mirrors the liveness check on the probe-reply path).
          if (!node->alive()) {
            ++stats_.dead_node_drops;
            if (retraced) {
              tracer_->AddEvent(retry_state.trace,
                                TraceEventKind::kDeadNodeDrop,
                                network_->sim().Now(), node->id());
            }
            return;
          }
          // Skip the retry if the "failed" recipient actually received the
          // frame (lost ACK) and the traversal is already ahead of us.
          const uint64_t key = CollectionKey(retry_state.query.id,
                                             retry_state.sector);
          const int* last = last_hop_seen_.find(key);
          if (last != nullptr && *last > retry_state.hop_count) {
            return;
          }
          if (retraced) {
            tracer_->AddEvent(retry_state.trace, TraceEventKind::kRetry,
                              network_->sim().Now(), node->id(), next_id);
          }
          node->neighbors().Remove(next_id);
          ForwardAlongItinerary(node, std::move(retry));
        },
        fwd_ctx);
    return;
  }
}

void Diknn::FinishSector(Node* node, SectorState* state_in) {
  SectorState& state = *state_in;
  // A sector finishing after CompleteQuery would re-insert a
  // finished_sectors_ key whose only eraser (CompleteQuery) already ran.
  if (!QueryActive(state.query.id)) {
    ++stats_.stale_branches_dropped;
    return;
  }
  const uint64_t key = CollectionKey(state.query.id, state.sector);
  if (!finished_sectors_.insert(key)) return;  // Fork branch.
  ++stats_.sector_results_sent;

  // The reply-route span is a child of the sector span; the sink closes
  // both when the bundle arrives (OnSectorResult walks to the parent).
  SpanId reply_span = 0;
  if (tracer_ != nullptr && state.trace.sampled()) {
    reply_span = tracer_->BeginSpan(state.trace, SpanKind::kReplyRoute,
                                    network_->sim().Now(), state.sector,
                                    node->id());
  }

  // A sector that never placed a Q-node (its cone lies outside the
  // deployment field, or is empty) still announces its zero exploration —
  // without this, the other sectors' interpolation assumes it explored as
  // much as they did and they stop too early (edge-of-field queries).
  if (params_.rendezvous && state.hop_count == 0 && node->alive()) {
    auto rendezvous = MessagePool::Make<RendezvousMessage>();
    rendezvous->query_id = state.query.id;
    rendezvous->sector = state.sector;
    rendezvous->ring = 0;
    rendezvous->explored = state.explored;
    node->SendBroadcast(MessageType::kDiknnRendezvous, std::move(rendezvous),
                        kRendezvousBytes, EnergyCategory::kQuery, {},
                        state.trace);
    ++stats_.rendezvous_sent;
  }
  auto result = MessagePool::MakeReusable<SectorResult>();
  result->query_id = state.query.id;
  result->sector = state.sector;
  result->candidates = state.best;  // Copy into the recycled buffer.
  result->explored = state.explored;
  const size_t bytes =
      16 + result->candidates.size() * kCandidateBytes;
  gpsr_->Send(node, state.query.sink_position, MessageType::kDiknnResult,
              std::move(result), bytes, EnergyCategory::kQuery,
              /*collect_info=*/false, state.query.sink,
              /*cheap_delivery=*/false,
              TraceContext{state.trace.trace_id, reply_span});
}

void Diknn::OnSectorResult(Node* node, const GeoRoutedMessage& msg) {
  const auto* result = static_cast<const SectorResult*>(msg.inner.get());
  PendingQuery* found = pending_.find(result->query_id);
  if (found == nullptr) return;  // Late result after completion.
  PendingQuery& pending = *found;
  if (node->id() != pending.query.sink) {
    // The bundle landed at the wrong node (sink moved out of reach);
    // the query-timeout path will close the query.
    DIKNN_LOG(kDebug) << "sector result for query " << result->query_id
                      << " stranded at node " << node->id();
    return;
  }
  ++stats_.sector_results_received;
  if (tracer_ != nullptr && msg.trace.sampled()) {
    const SimTime tnow = network_->sim().Now();
    // msg.trace points at the reply-route span; its parent is the sector
    // span opened at home-node arrival — close both at the sink.
    tracer_->EndSpan(msg.trace.trace_id, msg.trace.span_id, tnow);
    tracer_->EndSpan(msg.trace.trace_id,
                     tracer_->ParentOf(msg.trace.trace_id, msg.trace.span_id),
                     tnow);
  }
  for (const KnnCandidate& c : result->candidates) {
    pending.candidates.push_back(c);
  }
  PruneCandidates(&pending.candidates, pending.query.q, pending.query.k);
  pending.sectors_received.insert(result->sector);
  if (static_cast<int>(pending.sectors_received.size()) >=
      params_.num_sectors) {
    CompleteQuery(result->query_id, /*timed_out=*/false);
    return;
  }
  // Lost bundles should not stall the query until the hard timeout; once
  // at most two sectors are outstanding, arm a straggler grace — longer
  // at S-2 (two may still be legitimately traversing), shorter at S-1.
  // (Arming earlier would mis-fire: sectors whose cone is empty report
  // almost immediately, long before the working sectors finish.)
  const int received = static_cast<int>(pending.sectors_received.size());
  if (received >= params_.num_sectors - 2) {
    const uint64_t query_id = result->query_id;
    // Scale the grace with the query's elapsed time: a sector still
    // extending through a sparse region needs proportionally longer than
    // a genuinely lost bundle deserves.
    double grace = std::max(params_.result_grace,
                            0.5 * (network_->sim().Now() -
                                   pending.issued_at));
    if (received == params_.num_sectors - 2) grace *= 2.0;
    network_->sim().Cancel(pending.grace_event);
    pending.grace_event = network_->sim().ScheduleAfter(
        grace,
        [this, query_id]() { CompleteQuery(query_id, /*timed_out=*/false); });
  }
}

void Diknn::CompleteQuery(uint64_t query_id, bool timed_out) {
  AllocScope scope(&knn_allocs_);
  PendingQuery* found = pending_.find(query_id);
  if (found == nullptr || found->completed) return;
  PendingQuery& pending = *found;
  pending.completed = true;
  network_->sim().Cancel(pending.timeout_event);
  network_->sim().Cancel(pending.grace_event);

  if (timed_out) {
    ++stats_.timeouts;
  } else {
    ++stats_.queries_completed;
  }

  KnnResult result;
  result.query_id = query_id;
  result.candidates = pending.candidates;
  result.issued_at = pending.issued_at;
  result.completed_at = network_->sim().Now();
  result.timed_out = timed_out;
  PruneCandidates(&result.candidates, pending.query.q, pending.query.k);

  if (tracer_ != nullptr && pending.trace.sampled()) {
    const SimTime tnow = network_->sim().Now();
    if (timed_out) {
      tracer_->AddEvent(pending.trace, TraceEventKind::kTimeout, tnow,
                        pending.query.sink);
    }
    // Close every span still open on this trace (straggler sectors, the
    // root). The workload driver's own CloseTrace (same sim time, via the
    // handler below) is idempotent on top of this.
    tracer_->CloseTrace(pending.trace.trace_id, tnow);
  }

  ResultHandler handler = std::move(pending.handler);
  pending_.erase(query_id);
  RecycleReplied(query_id);
  for (int s = 0; s < params_.num_sectors; ++s) {
    const uint64_t key = CollectionKey(query_id, s);
    // An open collection window would keep the sector traversing, probing
    // and routing a result nobody reads; close it and cancel its finish
    // event.
    if (Collection* open = collections_.find(key)) {
      network_->sim().Cancel(open->finish_event);
      RecycleReplies(&open->replies);
      collections_.erase(key);
      ++stats_.collections_cancelled;
    }
    last_hop_seen_.erase(key);
    finished_sectors_.erase(key);
  }
  // Scrub the per-node rendezvous buffers: entries for this query can
  // never be merged again, and age-based eviction only runs when a node
  // happens to hear another broadcast. The vectors themselves stay in the
  // map — their capacity serves the node's next query.
  heard_rendezvous_.ForEach(
      [query_id](NodeId, std::vector<HeardRendezvous>& heard) {
        std::erase_if(heard, [query_id](const HeardRendezvous& h) {
          return h.msg.query_id == query_id;
        });
      });
  if (completion_observer_) completion_observer_(query_id, timed_out);
  if (handler) handler(result);
}

DiknnLifecycleCounts Diknn::lifecycle_counts() const {
  DiknnLifecycleCounts counts;
  counts.pending = pending_.size();
  counts.collections = collections_.size();
  counts.last_hop_seen = last_hop_seen_.size();
  counts.finished_sectors = finished_sectors_.size();
  counts.replied_queries = replied_.size();
  replied_.ForEach([&](uint64_t, const FlatSet<NodeId>& nodes) {
    counts.replied_entries += nodes.size();
  });
  heard_rendezvous_.ForEach(
      [&](NodeId, const std::vector<HeardRendezvous>& heard) {
        counts.heard_rendezvous_entries += heard.size();
      });
  return counts;
}

size_t Diknn::ResidueFor(uint64_t query_id) const {
  size_t residue = pending_.count(query_id) + replied_.count(query_id);
  const auto owned = [query_id](uint64_t key) {
    return (key >> 8) == query_id;
  };
  collections_.ForEach([&](uint64_t key, const Collection&) {
    if (owned(key)) ++residue;
  });
  last_hop_seen_.ForEach([&](uint64_t key, const int&) {
    if (owned(key)) ++residue;
  });
  finished_sectors_.ForEach([&](uint64_t key) {
    if (owned(key)) ++residue;
  });
  heard_rendezvous_.ForEach(
      [&](NodeId, const std::vector<HeardRendezvous>& heard) {
        for (const HeardRendezvous& h : heard) {
          if (h.msg.query_id == query_id) ++residue;
        }
      });
  return residue;
}

}  // namespace diknn
