#include "knn/continuous.h"

#include <algorithm>

namespace diknn {

ContinuousKnn::ContinuousKnn(Network* network, KnnProtocol* protocol)
    : network_(network), protocol_(protocol) {}

uint64_t ContinuousKnn::Subscribe(NodeId sink, Point q, int k,
                                  SimTime period, int rounds,
                                  KnnUpdateHandler handler) {
  const uint64_t id = next_id_++;
  Subscription sub;
  sub.sink = sink;
  sub.q = q;
  sub.k = k;
  sub.period = period;
  sub.rounds_left = rounds > 0 ? rounds : -1;
  sub.handler = std::move(handler);
  subscriptions_.TryEmplace(id, std::move(sub));
  IssueRound(id);
  return id;
}

void ContinuousKnn::Cancel(uint64_t subscription_id) {
  subscriptions_.erase(subscription_id);
}

void ContinuousKnn::IssueRound(uint64_t id) {
  Subscription* found = subscriptions_.find(id);
  if (found == nullptr) return;
  Subscription& sub = *found;

  protocol_->IssueQuery(
      sub.sink, sub.q, sub.k, [this, id](const KnnResult& result) {
        Subscription* found = subscriptions_.find(id);
        if (found == nullptr) return;  // Cancelled mid-flight.
        Subscription& sub = *found;

        KnnUpdate update;
        update.subscription_id = id;
        update.round = sub.round++;
        update.result = result;
        FlatSet<NodeId> current;
        for (NodeId node : result.CandidateIds()) {
          current.insert(node);
          if (!sub.last_ids.contains(node)) update.added.push_back(node);
        }
        sub.last_ids.ForEach([&](NodeId node) {
          if (!current.contains(node)) update.removed.push_back(node);
        });
        std::sort(update.added.begin(), update.added.end());
        std::sort(update.removed.begin(), update.removed.end());
        sub.last_ids = std::move(current);

        // The handler may Cancel() this subscription re-entrantly: take a
        // copy of what the continuation needs first.
        const SimTime period = sub.period;
        bool more = sub.rounds_left < 0 || --sub.rounds_left > 0;
        KnnUpdateHandler handler = sub.handler;
        if (!more) subscriptions_.erase(id);
        if (handler) handler(update);
        if (more && subscriptions_.contains(id)) {
          network_->sim().ScheduleAfter(period,
                                        [this, id]() { IssueRound(id); });
        }
      });
}

}  // namespace diknn
