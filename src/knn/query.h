// Shared KNN query types and the protocol interface implemented by DIKNN
// and every baseline, so the experiment harness can drive them uniformly.

#ifndef DIKNN_KNN_QUERY_H_
#define DIKNN_KNN_QUERY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/alloc_probe.h"
#include "core/geometry.h"
#include "net/packet.h"
#include "sim/event_queue.h"

namespace diknn {

/// A snapshot KNN query (Definition 1 of the paper).
struct KnnQuery {
  uint64_t id = 0;          ///< Unique per query.
  Point q;                  ///< Query point.
  int k = 1;                ///< Number of nearest neighbors requested.
  NodeId sink = kInvalidNodeId;  ///< Issuing node s.
  Point sink_position;      ///< Sink position at issue time (return target).
  double assurance_gain = 0.1;   ///< g in [0,1] (Section 4.3, mobility).
};

/// One reported neighbor candidate.
struct KnnCandidate {
  NodeId id = kInvalidNodeId;
  Point position;           ///< Position when the node reported.
  double speed = 0.0;       ///< Speed when the node reported.
  SimTime sampled_at = 0.0; ///< When the report was generated.
};

/// Final (possibly partial) answer delivered at the sink.
struct KnnResult {
  uint64_t query_id = 0;
  std::vector<KnnCandidate> candidates;  ///< Best-first, at most k entries.
  SimTime issued_at = 0.0;
  SimTime completed_at = 0.0;
  bool timed_out = false;   ///< True if completed by timeout, not receipt.

  /// Query latency in seconds.
  double Latency() const { return completed_at - issued_at; }

  /// Ids of the reported candidates, in rank order.
  std::vector<NodeId> CandidateIds() const;
};

/// Invoked at the sink when a query completes (or times out).
using ResultHandler = std::function<void(const KnnResult&)>;

/// Common interface for in-network KNN query processors.
class KnnProtocol {
 public:
  virtual ~KnnProtocol() = default;

  /// Registers the protocol's message handlers on every node. Call once,
  /// before issuing queries.
  virtual void Install() = 0;

  /// Issues a KNN query from node `sink` for the k nodes nearest to `q`.
  /// `handler` fires exactly once at completion or timeout.
  virtual void IssueQuery(NodeId sink, Point q, int k,
                          ResultHandler handler) = 0;

  /// Short display name ("DIKNN", "KPT+KNNB", "PeerTree", ...).
  virtual std::string name() const = 0;

  /// Heap allocations attributed to the protocol's handlers and events
  /// (docs/PACKET_PLANE.md). Protocols that do not arm an AllocScope
  /// return the default zero counters.
  virtual const AllocCounters& alloc_counters() const {
    static const AllocCounters kNone;
    return kNone;
  }
  virtual void ResetAllocCounters() {}
};

/// Keeps the `count` candidates nearest to `q` in `candidates`, best
/// first, deduplicating by node id (keeping the freshest report).
void PruneCandidates(std::vector<KnnCandidate>* candidates, const Point& q,
                     size_t count);

}  // namespace diknn

#endif  // DIKNN_KNN_QUERY_H_
