#include "knn/itinerary.h"

#include <algorithm>
#include <cassert>

namespace diknn {

void Itinerary::Rebuild(const ItineraryParams& params) {
  params_ = params;
  center_ = Point{};
  init_length_ = 0.0;
  num_rings_ = 0;
  total_length_ = 0.0;
  segments_.clear();
  cumulative_.clear();
  assert(params_.num_sectors >= 1);
  assert(params_.width > 0.0);
  const double S = params_.num_sectors;
  const double w = params_.width;
  const double R = params_.radius;
  const double half_angle = kPi / S;  // Half the sector's central angle.
  const SectorPartition sectors(params_.q, params_.num_sectors);
  const double bisector = sectors.BisectorAngle(params_.sector);

  // linit = min(w / (2 sin(pi/S)), R). For S == 1 the sector is the whole
  // disk and sin(pi) = 0; the init segment then covers the full radius.
  const double sin_h = std::sin(half_angle);
  init_length_ = (sin_h <= 1e-12) ? R : std::min(w / (2.0 * sin_h), R);
  center_ = PointAtAngle(params_.q, bisector, init_length_);

  // Ring count for full coverage. The traversal covers w/2 to each side
  // of every segment, so rings are needed until linit + rings*w + w/2
  // reaches R. (The paper's (R - linit)/w expression read as a floor
  // would leave the sector's outer wedge unvisited whenever the division
  // has a remainder — a coverage hole; the ceiling form below closes it.)
  const int base_rings = static_cast<int>(
      std::ceil((R - init_length_ - w / 2.0) / w));
  num_rings_ = std::max(0, base_rings) + std::max(0, params_.extra_rings);

  // Init segment: q -> q' along the bisector.
  AddLine(SegmentKind::kInit, 0, params_.q, center_);

  // Serpentine ring traversal. Even sectors start at the lower border and
  // sweep counter-clockwise; odd sectors are inverted so that adjacent
  // sectors' adj-segments meet face-to-face (the rendezvous of Fig. 6).
  const bool invert = (params_.sector % 2) == 1;
  double theta = invert ? (bisector + half_angle) : (bisector - half_angle);
  double sweep_sign = invert ? -1.0 : 1.0;
  Point cursor = center_;

  for (int j = 1; j <= num_rings_; ++j) {
    const double rho = j * w;
    // Adj segment: radial step outward, parallel to the border at `theta`.
    const Point ring_start = PointAtAngle(center_, theta, rho);
    AddLine(SegmentKind::kAdj, j, cursor, ring_start);
    // Peri segment: arc across the sector's central angle.
    const double sweep = sweep_sign * 2.0 * half_angle;
    AddArc(j, rho, theta, sweep);
    theta = NormalizeAngle(theta + sweep);
    sweep_sign = -sweep_sign;
    cursor = PointAtAngle(center_, theta, rho);
  }
}

void Itinerary::AddLine(SegmentKind kind, int ring, Point from, Point to) {
  Segment seg;
  seg.kind = kind;
  seg.ring = ring;
  seg.is_arc = false;
  seg.a = from;
  seg.b = to;
  seg.length = Distance(from, to);
  total_length_ += seg.length;
  segments_.push_back(seg);
  cumulative_.push_back(total_length_);
}

void Itinerary::AddArc(int ring, double radius, double a0, double sweep) {
  Segment seg;
  seg.kind = SegmentKind::kPeri;
  seg.ring = ring;
  seg.is_arc = true;
  seg.arc_center = center_;
  seg.arc_radius = radius;
  seg.a0 = a0;
  seg.sweep = sweep;
  seg.length = std::abs(sweep) * radius;
  total_length_ += seg.length;
  segments_.push_back(seg);
  cumulative_.push_back(total_length_);
}

namespace {

// Index of the segment containing arc-length position s.
size_t SegmentIndexFor(const std::vector<double>& cumulative, double s) {
  auto it = std::lower_bound(cumulative.begin(), cumulative.end(), s);
  if (it == cumulative.end()) return cumulative.size() - 1;
  return static_cast<size_t>(it - cumulative.begin());
}

}  // namespace

Point Itinerary::PointAt(double s) const {
  assert(!segments_.empty());
  s = std::clamp(s, 0.0, total_length_);
  const size_t idx = SegmentIndexFor(cumulative_, s);
  const Segment& seg = segments_[idx];
  const double seg_start = cumulative_[idx] - seg.length;
  const double t = seg.length <= 0.0
                       ? 0.0
                       : std::clamp((s - seg_start) / seg.length, 0.0, 1.0);
  if (!seg.is_arc) return Lerp(seg.a, seg.b, t);
  const double angle = seg.a0 + t * seg.sweep;
  return PointAtAngle(seg.arc_center, angle, seg.arc_radius);
}

Itinerary::SegmentKind Itinerary::KindAt(double s) const {
  assert(!segments_.empty());
  s = std::clamp(s, 0.0, total_length_);
  return segments_[SegmentIndexFor(cumulative_, s)].kind;
}

int Itinerary::RingAt(double s) const {
  assert(!segments_.empty());
  s = std::clamp(s, 0.0, total_length_);
  return segments_[SegmentIndexFor(cumulative_, s)].ring;
}

double Itinerary::LengthThroughRing(int j) const {
  if (j <= 0) return init_length_;
  double acc = 0.0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    acc = cumulative_[i];
    if (segments_[i].kind == SegmentKind::kPeri && segments_[i].ring == j) {
      return acc;
    }
  }
  return total_length_;
}

}  // namespace diknn
