// Sub-itinerary geometry for concurrent query dissemination (Section 3.3,
// Fig. 4 of the paper).
//
// The KNN boundary (circle of radius R around the query point q) is split
// into S equal cone-shaped sectors. Each sector is traversed by one
// sub-itinerary made of three segment kinds:
//
//   init- : a straight run from q along the sector bisector, of length
//           linit = min(w / (2 sin(pi/S)), R) — the point where the
//           bisector is w/2 away from both sector borders;
//   peri- : arcs of concentric circles centered at q' (the end of the
//           init-segment) with radii w, 2w, ..., each spanning the
//           sector's central angle 2*pi/S;
//   adj-  : radial connectors of length w between consecutive rings,
//           running parallel to a sector border.
//
// Rings are traversed serpentine-fashion (alternating direction), and the
// overall direction is inverted in every interseptal sector so that
// adj-segments of adjacent sectors come face-to-face, forming the
// rendezvous regions of Section 4.3 (Fig. 6).
//
// The itinerary width w defaults to sqrt(3)/2 * r, which guarantees full
// coverage of the boundary with minimal itinerary length.

#ifndef DIKNN_KNN_ITINERARY_H_
#define DIKNN_KNN_ITINERARY_H_

#include <cmath>
#include <vector>

#include "core/geometry.h"

namespace diknn {

/// The itinerary width that yields full coverage with minimal length.
inline double DefaultItineraryWidth(double radio_range) {
  return std::sqrt(3.0) / 2.0 * radio_range;
}

/// Parameters defining one sector's sub-itinerary.
struct ItineraryParams {
  Point q;            ///< Query point (boundary center).
  double radius = 0;  ///< Boundary radius R.
  int sector = 0;     ///< Sector index in [0, num_sectors).
  int num_sectors = 8;
  double width = 0;   ///< Itinerary width w.
  int extra_rings = 0;///< Rings appended beyond R (dynamic expansion).
};

/// Arc-length-parameterized polyline/arc path for one sector.
class Itinerary {
 public:
  enum class SegmentKind { kInit, kAdj, kPeri };

  /// Empty itinerary; call Rebuild before use. Exists so hot paths can
  /// keep one scratch instance and rebuild it in place per hop instead of
  /// constructing (and heap-allocating) a fresh one.
  Itinerary() = default;

  explicit Itinerary(const ItineraryParams& params) { Rebuild(params); }

  /// Recomputes the geometry for `params`, reusing the segment buffers
  /// (allocation-free once at high-water capacity).
  void Rebuild(const ItineraryParams& params);

  const ItineraryParams& params() const { return params_; }

  /// Total arc length of the sub-itinerary.
  double TotalLength() const { return total_length_; }

  /// Point at arc-length position `s` (clamped to [0, TotalLength()]).
  Point PointAt(double s) const;

  /// Segment kind at position `s`.
  SegmentKind KindAt(double s) const;

  /// Ring index at position `s`: 0 on the init segment, j on ring j's adj
  /// or peri segment.
  int RingAt(double s) const;

  /// Length of the init segment (linit).
  double init_length() const { return init_length_; }

  /// Number of rings, including extra_rings.
  int num_rings() const { return num_rings_; }

  /// Center q' of the concentric peri circles.
  Point center() const { return center_; }

  /// Arc-length position where ring `j` (1-based) ends; position 0 refers
  /// to the end of the init segment.
  double LengthThroughRing(int j) const;

  /// Approximate maximum distance from q covered by the traversal.
  double CoverageRadius() const {
    return init_length_ + num_rings_ * params_.width;
  }

 private:
  struct Segment {
    SegmentKind kind;
    int ring;        // 0 for init, else 1-based ring index.
    double length;
    // Line: from a to b. Arc: centered at `arc_center`, radius
    // `arc_radius`, from angle a0 sweeping `sweep` radians (signed).
    bool is_arc = false;
    Point a, b;
    Point arc_center;
    double arc_radius = 0, a0 = 0, sweep = 0;
  };

  void AddLine(SegmentKind kind, int ring, Point from, Point to);
  void AddArc(int ring, double radius, double a0, double sweep);

  ItineraryParams params_;
  Point center_;
  double init_length_ = 0;
  // (Rebuild resets every scalar and clears the vectors.)
  int num_rings_ = 0;
  double total_length_ = 0;
  std::vector<Segment> segments_;
  std::vector<double> cumulative_;  // Cumulative length at segment ends.
};

}  // namespace diknn

#endif  // DIKNN_KNN_ITINERARY_H_
