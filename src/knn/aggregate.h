// Itinerary-based in-network aggregation.
//
// The itinerary concept also descends from serial data fusion along
// space-filling curves (Patil, Das & Nasipuri, SECON 2004 — the paper's
// reference [28]): instead of hauling every reading to the sink, the
// query carries a constant-size aggregate (count / sum / min / max) along
// the sweep and folds each D-node's sample into it. Forward messages stay
// tiny no matter how many nodes contribute — the fusion advantage this
// module exists to demonstrate next to the collect-everything window
// query.
//
// Allocation discipline mirrors DIKNN (docs/PACKET_PLANE.md). Every
// payload here is flat, so pooled size-class messages suffice; only the
// per-query replied sets need freelist recycling.

#ifndef DIKNN_KNN_AGGREGATE_H_
#define DIKNN_KNN_AGGREGATE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "core/alloc_probe.h"
#include "core/flat_map.h"
#include "knn/window.h"
#include "net/network.h"
#include "net/sensor_field.h"
#include "routing/gpsr.h"

namespace diknn {

/// Constant-size decomposable aggregate over sensor samples.
struct AggregateValue {
  uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Fold(double sample) {
    ++count;
    sum += sample;
    min = std::min(min, sample);
    max = std::max(max, sample);
  }

  void Merge(const AggregateValue& other) {
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
};

/// Final answer of an aggregate query.
struct AggregateResult {
  uint64_t query_id = 0;
  AggregateValue value;
  SimTime issued_at = 0;
  SimTime completed_at = 0;
  bool timed_out = false;

  double Latency() const { return completed_at - issued_at; }
};

using AggregateResultHandler = std::function<void(const AggregateResult&)>;

/// Serpentine-sweep aggregation over a rectangular region. Shares the
/// tunables of the window query (the sweep geometry is identical); only
/// the payload differs: a constant-size AggregateValue instead of a
/// growing candidate list.
class ItineraryAggregateQuery {
 public:
  /// `field` provides the samples D-nodes report; must outlive this.
  ItineraryAggregateQuery(Network* network, GpsrRouting* gpsr,
                          SensorField* field,
                          WindowQueryParams params = {});

  /// Registers handlers on every node. Call once.
  void Install();

  /// Computes the aggregate of all readings inside `region`.
  void IssueQuery(NodeId sink, const Rect& region,
                  AggregateResultHandler handler);

  const WindowQueryStats& stats() const { return stats_; }

  /// Per-query entries still alive across all containers. Zero after a
  /// drained run; the lifecycle-soak tests assert on it.
  size_t PerQueryResidue() const {
    return pending_.size() + collections_.size() + replied_.size() +
           last_hop_seen_.size();
  }

  /// Heap allocations attributed to the protocol's handlers and events.
  const AllocCounters& alloc_counters() const { return knn_allocs_; }
  void ResetAllocCounters() { knn_allocs_.Reset(); }

 private:
  struct QueryDescriptor {
    uint64_t id = 0;
    Rect region;
    NodeId sink = kInvalidNodeId;
    Point sink_position;
  };

  struct QueryBootstrap : Message {
    QueryDescriptor query;
  };

  struct SweepState {
    QueryDescriptor query;
    double progress = 0.0;
    int hop_count = 0;
    AggregateValue aggregate;

    // Constant wire size: the whole point of fusion.
    size_t WireBytes() const { return 24 + 20; }
  };

  struct ForwardMessage : Message {
    SweepState state;
  };

  struct ProbeMessage : Message {
    uint64_t query_id = 0;
    Rect region;
    Point qnode_position;
    double reference_angle = 0.0;
    double collect_window = 0.0;
  };

  struct ReplyMessage : Message {
    uint64_t query_id = 0;
    double sample = 0.0;
  };

  struct ResultMessage : Message {
    uint64_t query_id = 0;
    AggregateValue value;
  };

  struct PendingQuery {
    QueryDescriptor query;
    AggregateResultHandler handler;
    SimTime issued_at = 0;
    EventId timeout_event = 0;
    bool completed = false;
  };

  struct Collection {
    SweepState state;
    NodeId qnode = kInvalidNodeId;
    AggregateValue replies;
    EventId finish_event = 0;
  };

  /// True while the query has neither completed nor timed out. Every
  /// handler that touches per-query state checks this first, so stale
  /// in-flight events cannot resurrect entries after teardown.
  bool QueryActive(uint64_t query_id) const {
    return pending_.count(query_id) != 0;
  }

  double EffectiveWidth() const;
  void OnEntryArrival(Node* node, const GeoRoutedMessage& msg);
  void StartQNode(Node* node, SweepState state);
  void FinishCollection(uint64_t query_id);
  void OnProbe(Node* node, const ProbeMessage& probe);
  void OnReply(Node* node, const ReplyMessage& reply);
  void ForwardAlongSweep(Node* node, SweepState state);
  void FinishSweep(Node* node, SweepState state);
  void OnResult(Node* node, const GeoRoutedMessage& msg);
  void TeardownQueryState(uint64_t query_id);
  void CompleteQuery(uint64_t query_id, bool timed_out);

  // Freelist-backed per-query containers (see diknn.h for the rationale).
  FlatSet<NodeId>& RepliedFor(uint64_t query_id);
  void RecycleReplied(uint64_t query_id);

  Network* network_;
  GpsrRouting* gpsr_;
  SensorField* field_;
  WindowQueryParams params_;
  WindowQueryStats stats_;

  uint64_t next_query_id_ = 1;
  FlatMap<uint64_t, PendingQuery> pending_;
  FlatMap<uint64_t, Collection> collections_;
  FlatMap<uint64_t, FlatSet<NodeId>> replied_;
  FlatMap<uint64_t, int> last_hop_seen_;

  std::vector<FlatSet<NodeId>> replied_freelist_;
  AllocCounters knn_allocs_;
};

}  // namespace diknn

#endif  // DIKNN_KNN_AGGREGATE_H_
