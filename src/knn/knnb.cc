#include "knn/knnb.h"

#include <algorithm>
#include <cmath>

namespace diknn {

double LuneArea(double r, double d) {
  if (d >= 2.0 * r) return kPi * r * r;
  if (d <= 0.0) return 0.0;
  const double lens = 2.0 * r * r * std::acos(d / (2.0 * r)) -
                      (d / 2.0) * std::sqrt(4.0 * r * r - d * d);
  return kPi * r * r - lens;
}

KnnbResult Knnb(const std::vector<RouteHopInfo>& info_list, const Point& q,
                double r, int k, double max_radius,
                KnnbAreaModel area_model) {
  KnnbResult result;
  const double min_radius = r;

  if (info_list.empty() || k <= 0) {
    // No information gathered (sink == home node with no hops). Fall back
    // to a uniform-density guess of one node per radio disk.
    result.radius = std::clamp(r * std::sqrt(static_cast<double>(
                                   std::max(k, 1))),
                               min_radius, max_radius);
    result.extrapolated = true;
    return result;
  }

  // Area sampled by entry j's enc count. Entry 0 (the sink) counted its
  // whole radio disk; entry j >= 1 counted the lune of its disk outside
  // the previous hop's disk. The paper's rectangle model instead charges
  // a semicircle for the tail entry and an r-by-hop rectangle per hop.
  auto entry_area = [&](int j) {
    if (area_model == KnnbAreaModel::kPaperRectangle) {
      if (j == static_cast<int>(info_list.size()) - 1) {
        return kPi * r * r / 2.0;  // A_p, the home-node semicircle.
      }
      return r * Distance(info_list[j + 1].location, info_list[j].location);
    }
    if (j == 0) return kPi * r * r;
    return LuneArea(
        r, Distance(info_list[j].location, info_list[j - 1].location));
  };

  int i = static_cast<int>(info_list.size()) - 1;
  double neighbors = info_list[i].encountered;
  double approx_area = entry_area(i);

  while (i >= 0) {
    ++result.hops_examined;
    const double d = Distance(info_list[i].location, q);
    const double density = neighbors / approx_area;
    const double est_k = kPi * d * d * density;
    if (est_k >= k) {
      result.radius = std::clamp(d, min_radius, max_radius);
      result.density = density;
      return result;
    }
    if (i == 0) break;
    // Extend the estimate one hop toward the sink: add the newly
    // encountered neighbors and the area their hop covered (APPROX).
    neighbors += info_list[i - 1].encountered;
    approx_area += entry_area(i - 1);
    --i;
  }

  // The whole list was consumed without reaching k (the routing path is
  // short relative to k). Extrapolate from the accumulated density:
  // k = pi * R^2 * D  =>  R = sqrt(k / (pi * D)).
  result.extrapolated = true;
  const double density = neighbors / approx_area;
  result.density = density;
  if (density <= 0.0) {
    result.radius = max_radius;
    return result;
  }
  result.radius =
      std::clamp(std::sqrt(k / (kPi * density)), min_radius, max_radius);
  return result;
}

double KptConservativeRadius(int k, double mean_hop_distance) {
  return static_cast<double>(k) * mean_hop_distance;
}

}  // namespace diknn
