// Itinerary-based window (range) queries.
//
// DIKNN's itinerary concept descends from the window-query engine of Xu
// et al. (ICDE 2006, the paper's reference [31]): a rectangular query
// window is swept by a serpentine (boustrophedon) itinerary with line
// spacing w = sqrt(3)/2 * r, collecting every node inside the window.
// This module implements that ancestor protocol on the same substrate:
// it shares GPSR, the probe/collect/forward machinery, and the collection
// scheme with DIKNN, and serves both as a standalone query facility and
// as the "infrastructure-free window query" point of comparison.
//
// Allocation discipline mirrors DIKNN (docs/PACKET_PLANE.md): pooled
// sweep-state envelopes, flat per-query maps, recycled reply buffers.

#ifndef DIKNN_KNN_WINDOW_H_
#define DIKNN_KNN_WINDOW_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/alloc_probe.h"
#include "core/flat_map.h"
#include "knn/query.h"
#include "net/network.h"
#include "routing/gpsr.h"

namespace diknn {

/// A rectangular snapshot query: report every node inside `window`.
struct WindowQuery {
  uint64_t id = 0;
  Rect window;
  NodeId sink = kInvalidNodeId;
  Point sink_position;
};

/// Result of a window query: the reporting nodes, unordered.
struct WindowResult {
  uint64_t query_id = 0;
  std::vector<KnnCandidate> nodes;
  SimTime issued_at = 0;
  SimTime completed_at = 0;
  bool timed_out = false;

  double Latency() const { return completed_at - issued_at; }
};

using WindowResultHandler = std::function<void(const WindowResult&)>;

/// Serpentine sweep path over a rectangle: horizontal scan lines spaced
/// `spacing` apart, connected by vertical steps, alternating direction.
/// Arc-length parameterized like Itinerary.
class SerpentinePath {
 public:
  SerpentinePath(const Rect& window, double spacing);

  double TotalLength() const { return total_length_; }
  Point PointAt(double s) const;
  int num_lines() const { return num_lines_; }

 private:
  Rect window_;
  double spacing_;
  int num_lines_;
  double total_length_;
};

/// Tunables for the window query protocol.
struct WindowQueryParams {
  double width = 0.0;            ///< Sweep spacing; 0 = sqrt(3)/2 * r.
  double time_unit = 0.018;      ///< Collection slot per D-node (s).
  double step_fraction = 0.8;    ///< Q-node hop length (fraction of r).
  int max_void_skips = 6;
  SimTime query_timeout = 12.0;
};

/// Behaviour counters.
struct WindowQueryStats {
  uint64_t queries_issued = 0;
  uint64_t queries_completed = 0;
  uint64_t timeouts = 0;
  uint64_t qnode_hops = 0;
  uint64_t replies = 0;
  uint64_t voids = 0;
  /// Sweep events that arrived after their query completed and were
  /// dropped instead of resurrecting per-query state.
  uint64_t stale_drops = 0;
  /// Open collection windows cancelled by query completion.
  uint64_t collections_cancelled = 0;
};

/// The itinerary window query protocol.
class ItineraryWindowQuery {
 public:
  ItineraryWindowQuery(Network* network, GpsrRouting* gpsr,
                       WindowQueryParams params = {});

  /// Registers handlers on every node. Call once.
  void Install();

  /// Issues a window query from `sink`; `handler` fires exactly once.
  void IssueQuery(NodeId sink, const Rect& window,
                  WindowResultHandler handler);

  const WindowQueryStats& stats() const { return stats_; }

  /// Per-query entries still alive across all containers. Zero after a
  /// drained run; the lifecycle-soak tests assert on it.
  size_t PerQueryResidue() const {
    return pending_.size() + collections_.size() + replied_.size() +
           last_hop_seen_.size();
  }

  /// Heap allocations attributed to the protocol's handlers and events.
  const AllocCounters& alloc_counters() const { return knn_allocs_; }
  void ResetAllocCounters() { knn_allocs_.Reset(); }

 private:
  struct QueryBootstrap : Message {
    WindowQuery query;
  };

  struct SweepState {
    WindowQuery query;
    double progress = 0.0;
    int hop_count = 0;
    std::vector<KnnCandidate> collected;

    size_t WireBytes() const {
      return 24 + collected.size() * 12;
    }

    void Reuse() {
      query = WindowQuery{};
      progress = 0.0;
      hop_count = 0;
      collected.clear();
    }
  };

  /// Pooled envelope the sweep state rides in, hop to hop (recycled, the
  /// collected list keeps its capacity).
  struct ForwardMessage : Message {
    SweepState state;

    void Reuse() { state.Reuse(); }
  };

  struct ProbeMessage : Message {
    uint64_t query_id = 0;
    Rect window;
    Point qnode_position;
    double reference_angle = 0.0;
    double collect_window = 0.0;
  };

  struct ReplyMessage : Message {
    uint64_t query_id = 0;
    KnnCandidate candidate;
  };

  struct ResultMessage : Message {
    uint64_t query_id = 0;
    std::vector<KnnCandidate> nodes;

    void Reuse() {
      query_id = 0;
      nodes.clear();
    }
  };

  struct PendingQuery {
    WindowQuery query;
    WindowResultHandler handler;
    SimTime issued_at = 0;
    EventId timeout_event = 0;
    bool completed = false;
  };

  struct Collection {
    std::shared_ptr<ForwardMessage> fwd;
    NodeId qnode = kInvalidNodeId;
    std::vector<KnnCandidate> replies;
    EventId finish_event = 0;
  };

  /// True while the query has neither completed nor timed out. Every
  /// handler that touches per-query state checks this first, so stale
  /// in-flight events cannot resurrect entries after teardown.
  bool QueryActive(uint64_t query_id) const {
    return pending_.count(query_id) != 0;
  }

  double EffectiveWidth() const;
  void OnEntryArrival(Node* node, const GeoRoutedMessage& msg);
  void StartQNode(Node* node, std::shared_ptr<ForwardMessage> fwd);
  void FinishCollection(uint64_t query_id);
  void OnProbe(Node* node, const ProbeMessage& probe);
  void OnReply(Node* node, const ReplyMessage& reply);
  void ForwardAlongSweep(Node* node, std::shared_ptr<ForwardMessage> fwd);
  void FinishSweep(Node* node, SweepState* state);
  void OnResult(Node* node, const GeoRoutedMessage& msg);
  void TeardownQueryState(uint64_t query_id);
  void CompleteQuery(uint64_t query_id, bool timed_out);

  // Freelist-backed per-query containers (see diknn.h for the rationale).
  FlatSet<NodeId>& RepliedFor(uint64_t query_id);
  void RecycleReplied(uint64_t query_id);
  void RecycleReplies(std::vector<KnnCandidate>* replies);

  Network* network_;
  GpsrRouting* gpsr_;
  WindowQueryParams params_;
  WindowQueryStats stats_;

  uint64_t next_query_id_ = 1;
  FlatMap<uint64_t, PendingQuery> pending_;
  FlatMap<uint64_t, Collection> collections_;
  FlatMap<uint64_t, FlatSet<NodeId>> replied_;
  FlatMap<uint64_t, int> last_hop_seen_;

  std::vector<FlatSet<NodeId>> replied_freelist_;
  std::vector<std::vector<KnnCandidate>> replies_freelist_;
  AllocCounters knn_allocs_;
};

}  // namespace diknn

#endif  // DIKNN_KNN_WINDOW_H_
