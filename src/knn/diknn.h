// DIKNN — Density-aware Itinerary KNN query processing (the paper's core
// contribution, Sections 3 and 4).
//
// Execution phases:
//   1. Routing: the query is geo-routed (GPSR) from the sink s to the home
//      node nearest the query point q, collecting the information list L
//      (per-hop locations and newly-encountered neighbor counts) on the way.
//   2. Boundary estimation: the home node runs KNNB over L to obtain the
//      KNN boundary radius R.
//   3. Dissemination: the boundary is split into S sectors; one
//      sub-itinerary per sector is traversed concurrently. Each Q-node
//      broadcasts a probe, collects D-node replies under the
//      contention-based scheme (reply delay proportional to the angle from
//      a reference line), merges them into the partial result, and
//      forwards the query to the next Q-node along the itinerary. Voids
//      are bypassed by skipping ahead along the conceptual path.
//      Rendezvous messages exchanged where adjacent sectors' adj-segments
//      meet let sectors share explored-node statistics and adjust R
//      dynamically (spatial irregularity, Section 4.3); the last Q-node
//      applies the mobility assurance expansion R' = R + g*(te-ts)*mu.
//      Finally each sector's aggregate is geo-routed back to the sink.
//
// Steady-state allocation discipline (docs/PACKET_PLANE.md): the sector
// state travels Q-node to Q-node inside one pooled ForwardMessage whose
// buffers are recycled (MessagePool::MakeReusable), per-query bookkeeping
// lives in flat open-addressing maps, reply/dedup containers are recycled
// through freelists, and the itinerary geometry is rebuilt in a member
// scratch. After warmup a query hop costs zero heap allocations on the
// protocol side; the `knn` AllocCounters armed in every handler measure
// exactly that.

#ifndef DIKNN_KNN_DIKNN_H_
#define DIKNN_KNN_DIKNN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/alloc_probe.h"
#include "core/flat_map.h"
#include "knn/itinerary.h"
#include "knn/knnb.h"
#include "knn/query.h"
#include "net/network.h"
#include "routing/gpsr.h"

namespace diknn {

/// How a Q-node schedules its D-nodes' replies (Section 3.3, footnote 1:
/// "the data collection scheme introduced in this paper combines both the
/// token ring based and contention based scheme").
enum class CollectionScheme {
  /// Pure contention: reply delay proportional to the angle between the
  /// probe's reference line and the Q-node -> D-node line.
  kContention,
  /// Pure token ring: the probe carries a precedence list of the Q-node's
  /// known in-boundary neighbors; listed D-nodes reply in list order, one
  /// time unit m apart. Nodes the Q-node does not know stay silent.
  kPrecedenceList,
  /// The paper's combination: listed nodes use their precedence slot;
  /// unlisted nodes contend by angle in a tail window afterwards, so
  /// neighbor-table staleness costs nothing.
  kHybrid,
};

/// DIKNN tunables; defaults reproduce the paper's Section 5.1 table.
struct DiknnParams {
  int num_sectors = 8;          ///< S.
  double width = 0.0;           ///< Itinerary width w; 0 = sqrt(3)/2 * r.
  double time_unit = 0.018;     ///< m: per-D-node collection time unit (s).
  CollectionScheme collection_scheme = CollectionScheme::kHybrid;
  double assurance_gain = 0.1;  ///< g in [0, 1].
  bool rendezvous = true;       ///< Dynamic boundary adjustment (4.3).
  bool mobility_assurance = true;  ///< R' expansion at itinerary end (4.3).
  double step_fraction = 0.8;   ///< Q-node hop length as a fraction of r.
  int max_void_skips = 6;       ///< Lookahead extensions before giving up.
  int max_extra_rings = 4;      ///< Cap on dynamic boundary expansion.
  double max_radius_factor = 1.5;  ///< KNNB radius cap vs field diagonal.
  KnnbAreaModel knnb_area_model = KnnbAreaModel::kLune;  ///< See knnb.h.
  SimTime query_timeout = 8.0;  ///< Sink-side completion timeout.
  /// Once sector results start arriving, the sink stops waiting for the
  /// stragglers this long after the latest arrival (a lost bundle would
  /// otherwise stall the query until query_timeout).
  SimTime result_grace = 1.5;
};

/// Aggregate DIKNN behaviour counters (across all queries).
struct DiknnStats {
  uint64_t queries_issued = 0;
  uint64_t queries_completed = 0;
  uint64_t timeouts = 0;
  uint64_t home_node_arrivals = 0;
  uint64_t qnode_hops = 0;
  uint64_t probes_sent = 0;
  uint64_t replies_sent = 0;
  uint64_t sector_results_sent = 0;
  uint64_t sector_results_received = 0;
  uint64_t voids_encountered = 0;
  uint64_t sectors_abandoned = 0;  ///< Sub-itineraries ended by a void.
  uint64_t rendezvous_sent = 0;
  uint64_t rendezvous_merged = 0;
  uint64_t boundary_truncations = 0;
  uint64_t boundary_extensions = 0;
  uint64_t assurance_expansions = 0;
  double knnb_radius_sum = 0.0;    ///< For mean-radius diagnostics.
  uint64_t knnb_runs = 0;
  // Lifecycle hardening counters (failure paths).
  uint64_t stale_branches_dropped = 0;  ///< Work for completed queries.
  uint64_t dead_node_drops = 0;    ///< Traversal abandoned at a dead node.
  uint64_t collections_cancelled = 0;  ///< Open windows closed at completion.
};

/// Sizes of every per-query container, for lifecycle auditing. Invariant:
/// immediately after CompleteQuery(id) returns, no container retains an
/// entry for `id`, and after a fully drained run every count is zero.
struct DiknnLifecycleCounts {
  size_t pending = 0;
  size_t collections = 0;
  size_t last_hop_seen = 0;
  size_t finished_sectors = 0;
  size_t replied_queries = 0;
  size_t replied_entries = 0;          ///< Node ids across all queries.
  size_t heard_rendezvous_entries = 0; ///< Buffered broadcasts, all nodes.

  /// Entries that must drain to zero with the queries that own them.
  size_t TotalPerQuery() const {
    return pending + collections + last_hop_seen + finished_sectors +
           replied_queries + replied_entries + heard_rendezvous_entries;
  }
};

/// The DIKNN protocol. One instance manages the whole network (handlers
/// dispatch on the node the message arrived at, mirroring per-node state).
class Diknn : public KnnProtocol {
 public:
  /// `network` and `gpsr` must outlive the protocol. `gpsr->Install()`
  /// must have been called (or will be, before queries are issued).
  Diknn(Network* network, GpsrRouting* gpsr, DiknnParams params = {});

  void Install() override;
  void IssueQuery(NodeId sink, Point q, int k, ResultHandler handler) override;
  std::string name() const override { return "DIKNN"; }

  const DiknnStats& stats() const { return stats_; }
  const DiknnParams& params() const { return params_; }

  /// Observer invoked on every Q-node hop: (query id, sector, position).
  /// Used by the Fig. 7 visualization bench to trace itineraries.
  using HopObserver = std::function<void(uint64_t, int, Point)>;
  void set_hop_observer(HopObserver observer) {
    hop_observer_ = std::move(observer);
  }

  /// Observer invoked after a query's per-query state has been fully torn
  /// down (and before the result handler runs). The LifecycleAuditor hooks
  /// this to assert the teardown left no residue.
  using CompletionObserver = std::function<void(uint64_t query_id,
                                                bool timed_out)>;
  void set_completion_observer(CompletionObserver observer) {
    completion_observer_ = std::move(observer);
  }

  /// Query tracer: records the query/route/sector/hop/collection span
  /// tree and protocol events (void skips, rendezvous, boundary
  /// adjustments) for sampled queries. Not owned; may be null. When the
  /// workload driver holds an ambient trace context at IssueQuery time the
  /// protocol joins that trace; otherwise it starts its own (paper path).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Current size of every per-query container (lifecycle auditing).
  DiknnLifecycleCounts lifecycle_counts() const;

  /// Number of container entries still referencing `query_id`. Zero for
  /// any completed query; used by the LifecycleAuditor after each
  /// completion.
  size_t ResidueFor(uint64_t query_id) const;

  /// Heap allocations attributed to the protocol's handlers and events
  /// (docs/PACKET_PLANE.md). Flat after warmup; the bench_micro self-check
  /// asserts it.
  const AllocCounters& alloc_counters() const override { return knn_allocs_; }
  void ResetAllocCounters() override { knn_allocs_.Reset(); }

 private:
  // -------- wire messages --------

  /// Geo-routed sink -> home-node bootstrap.
  struct QueryBootstrap : Message {
    KnnQuery query;
  };

  /// Per-sector dissemination state, carried Q-node to Q-node.
  struct SectorState {
    KnnQuery query;
    int sector = 0;
    double radius = 0.0;        ///< Current boundary radius for the sector.
    double progress = 0.0;      ///< Arc-length progress along the itinerary.
    int extra_rings = 0;        ///< Dynamic expansion applied so far.
    std::vector<KnnCandidate> best;  ///< Pruned to k, best first.
    int explored = 0;           ///< Nodes that contributed data so far.
    double max_speed_seen = 0;  ///< mu for the mobility assurance.
    SimTime dissemination_start = 0;  ///< ts.
    int last_rendezvous_ring = -1;
    bool assurance_applied = false;
    int void_skips_total = 0;
    /// Q-node hop counter, used to suppress duplicate traversal branches
    /// (an ACK loss can make a sender believe its forward failed and
    /// retry via another node while the original recipient proceeds).
    int hop_count = 0;
    /// Explored-node counts by sector, learned at rendezvous; -1 unknown.
    /// Indexed by sector id, own entry kept current.
    std::vector<int> sector_explored;
    /// Trace attribution: (trace, sector-span) of the owning query.
    /// Simulation metadata; not counted by WireBytes.
    TraceContext trace;

    size_t WireBytes() const;

    /// MessagePool::MakeReusable contract: back to the default state,
    /// vector capacity retained.
    void Reuse() {
      query = KnnQuery{};
      sector = 0;
      radius = 0.0;
      progress = 0.0;
      extra_rings = 0;
      best.clear();
      explored = 0;
      max_speed_seen = 0;
      dissemination_start = 0;
      last_rendezvous_ring = -1;
      assurance_applied = false;
      void_skips_total = 0;
      hop_count = 0;
      sector_explored.clear();
      trace = TraceContext{};
    }
  };

  /// The pooled envelope the sector state rides in. The same object flows
  /// through the channel, the receiving handler's copy, the open
  /// collection window, and the itinerary forwarder, so one recycled
  /// buffer per in-flight sector branch serves the whole traversal.
  struct ForwardMessage : Message {
    SectorState state;

    void Reuse() { state.Reuse(); }
  };

  struct ProbeMessage : Message {
    uint64_t query_id = 0;
    int sector = 0;
    Point q;
    double radius = 0.0;
    Point qnode_position;
    double reference_angle = 0.0;
    double window = 0.0;       ///< Collection window length (s).
    /// Precedence list (kPrecedenceList / kHybrid): known in-boundary
    /// neighbors in reply order; listed nodes answer at index * m.
    std::vector<NodeId> precedence;
    double tail_start = 0.0;   ///< Contention tail begins here (kHybrid).
    /// (trace, collection-span) so D-node replies attribute to the window.
    TraceContext trace;

    void Reuse() {
      query_id = 0;
      sector = 0;
      q = Point{};
      radius = 0.0;
      qnode_position = Point{};
      reference_angle = 0.0;
      window = 0.0;
      precedence.clear();
      tail_start = 0.0;
      trace = TraceContext{};
    }
  };

  struct ReplyMessage : Message {
    uint64_t query_id = 0;
    int sector = 0;
    KnnCandidate candidate;
  };

  struct RendezvousMessage : Message {
    uint64_t query_id = 0;
    int sector = 0;
    int ring = 0;
    int explored = 0;
  };

  /// Geo-routed last-Q-node -> sink result bundle.
  struct SectorResult : Message {
    uint64_t query_id = 0;
    int sector = 0;
    std::vector<KnnCandidate> candidates;
    int explored = 0;

    void Reuse() {
      query_id = 0;
      sector = 0;
      candidates.clear();
      explored = 0;
    }
  };

  // -------- sink-side state --------

  struct PendingQuery {
    KnnQuery query;
    ResultHandler handler;
    std::vector<KnnCandidate> candidates;
    FlatSet<int> sectors_received;  ///< Dedups branch forks.
    SimTime issued_at = 0;
    EventId timeout_event = 0;
    EventId grace_event = 0;
    bool completed = false;
    /// Root trace context; unsampled when tracing is off. `owns_trace` is
    /// set when the protocol (not the workload driver) started the trace
    /// and is therefore responsible for its root span.
    TraceContext trace;
    SpanId route_span = 0;
    bool owns_trace = false;
  };

  // -------- Q-node-side transient state --------

  struct Collection {
    /// The pooled forward envelope whose state this window accumulates
    /// into; handed back to ForwardAlongItinerary when the window closes.
    std::shared_ptr<ForwardMessage> fwd;
    NodeId qnode = kInvalidNodeId;
    std::vector<KnnCandidate> replies;
    /// The scheduled FinishCollection event, cancelled if the query
    /// completes (or the collection is superseded) while the window is
    /// still open.
    EventId finish_event = 0;
    /// Open hop/collection spans, closed when the window finishes.
    SpanId hop_span = 0;
    SpanId collection_span = 0;
  };

  static uint64_t CollectionKey(uint64_t query_id, int sector) {
    return (query_id << 8) | static_cast<uint64_t>(sector & 0xff);
  }

  // -------- handlers --------

  // Phase 2 entry: KNNB at the home node, then sector spawn.
  void OnHomeNodeArrival(Node* node, const GeoRoutedMessage& msg);
  // A Q-node received the per-sector state: probe and collect.
  void StartQNode(Node* node, std::shared_ptr<ForwardMessage> fwd);
  // Collection window elapsed: aggregate, adjust, forward or finish.
  void FinishCollection(uint64_t key);
  // D-node heard a probe.
  void OnProbe(Node* node, const ProbeMessage& probe);
  // Q-node received a D-node reply.
  void OnReply(Node* node, const ReplyMessage& reply);
  // Any node heard a rendezvous broadcast: buffer it.
  void OnRendezvous(Node* node, const RendezvousMessage& msg);
  // Sector aggregate arrived (hopefully at the sink).
  void OnSectorResult(Node* node, const GeoRoutedMessage& msg);

  // -------- helpers --------

  // Rebuilds the member itinerary scratch for `state` and returns it.
  // The reference is valid until the next RebuildItinerary call; every
  // nested call (FinishSector -> route -> deliver -> spawn) happens after
  // the caller's last read.
  Itinerary& RebuildItinerary(const SectorState& state);
  // Applies rendezvous-based dynamic boundary adjustment; returns true if
  // the sub-itinerary should stop now.
  bool AdjustBoundary(Node* node, SectorState* state, int current_ring);
  // Chooses the next Q-node and forwards; finishes the sector on a void.
  void ForwardAlongItinerary(Node* node, std::shared_ptr<ForwardMessage> fwd);
  // Routes the sector aggregate back to the sink. Consumes the state's
  // candidate list.
  void FinishSector(Node* node, SectorState* state);
  // Completes a pending query at the sink (idempotent).
  void CompleteQuery(uint64_t query_id, bool timed_out);

  // The reply-dedup set for `query_id`, recycled through a freelist so
  // steady-state queries reuse grown tables. The reference is valid until
  // the next insert into replied_ (set-level inserts are fine).
  FlatSet<NodeId>& RepliedFor(uint64_t query_id);
  // Moves a cleared container to its freelist for the next query.
  void RecycleReplied(uint64_t query_id);
  void RecycleReplies(std::vector<KnnCandidate>* replies);

  double EffectiveWidth() const;
  double MaxBoundaryRadius() const;

  // True while `query_id` is in flight at the sink. Every handler that
  // touches per-query state guards on this: once CompleteQuery tears a
  // query down, straggling traversal work (forks, in-flight forwards,
  // late probes) must be dropped instead of resurrecting map entries.
  bool QueryActive(uint64_t query_id) const {
    return pending_.contains(query_id);
  }

  Network* network_;
  GpsrRouting* gpsr_;
  DiknnParams params_;
  DiknnStats stats_;
  HopObserver hop_observer_;
  CompletionObserver completion_observer_;
  Tracer* tracer_ = nullptr;

  uint64_t next_query_id_ = 1;
  FlatMap<uint64_t, PendingQuery> pending_;
  FlatMap<uint64_t, Collection> collections_;
  // Highest hop_count seen per (query, sector); lower-or-equal arrivals
  // are duplicate traversal branches and are dropped.
  FlatMap<uint64_t, int> last_hop_seen_;
  // Sectors whose aggregate has already been routed to the sink; further
  // FinishSector calls for them are stale fork branches.
  FlatSet<uint64_t> finished_sectors_;

  // Per-node state mirrors (indexed by node id, as a real deployment would
  // store them on the node itself):
  // nodes that already replied to a query, per query id.
  FlatMap<uint64_t, FlatSet<NodeId>> replied_;
  // recently heard rendezvous info, per node id. Emptied vectors stay in
  // the map so their capacity serves the node's next query.
  struct HeardRendezvous {
    RendezvousMessage msg;
    SimTime heard_at = 0;
  };
  FlatMap<NodeId, std::vector<HeardRendezvous>> heard_rendezvous_;

  // Scratch + freelists (allocation-free steady state).
  Itinerary itinerary_scratch_;
  std::vector<NeighborEntry> in_boundary_scratch_;
  std::vector<FlatSet<NodeId>> replied_freelist_;
  std::vector<std::vector<KnnCandidate>> replies_freelist_;
  AllocCounters knn_allocs_;
};

}  // namespace diknn

#endif  // DIKNN_KNN_DIKNN_H_
