// KNNB — the linear-time KNN boundary estimation algorithm (Section 4.2,
// Algorithm 1 of the paper).
//
// Input: the information list L gathered along the routing path from the
// sink to the home node, the query point q, the radio range r, and k.
// Output: radius R of the KNN boundary — the circle around q expected to
// contain the k nearest neighbors, assuming nodes are locally uniform.
//
// The algorithm walks L from the tail (the hops nearest q), maintaining a
// running neighbor count and an approximation of the area those hops
// covered: a semicircle of radius r at the home node plus one r-by-d
// rectangle per hop (Fig. 5). It returns the distance of the first hop
// whose implied density extrapolates to at least k nodes around q.

#ifndef DIKNN_KNN_KNNB_H_
#define DIKNN_KNN_KNNB_H_

#include <vector>

#include "core/geometry.h"
#include "routing/gpsr.h"

namespace diknn {

/// How KNNB approximates the area covered by each routing hop.
enum class KnnbAreaModel {
  /// Algorithm 1 verbatim: one r-by-hop-length rectangle per hop and a
  /// semicircle at the home node. Underestimates the covered area by
  /// roughly 2x (the radio disk is 2r wide, not r), which overestimates
  /// density and shrinks R — measurably hurting accuracy. Kept for the
  /// fidelity ablation (bench_ablations).
  kPaperRectangle,
  /// Geometrically exact: each hop covers the lune of the current node's
  /// radio disk outside the previous node's disk — which is precisely the
  /// region the enc_i "newly encountered neighbors" count samples — and
  /// the home node contributes its full disk. Closed form, still O(1)
  /// per hop. Reproduces the radii the paper reports (its example gives
  /// R ~= 53 m at k = 40; the rectangle model yields ~37 m).
  kLune,
};

/// Result of a KNNB estimation, with diagnostics for tests and benches.
struct KnnbResult {
  double radius = 0.0;        ///< Estimated KNN boundary radius R.
  double density = 0.0;       ///< Node density used (nodes / m^2).
  int hops_examined = 0;      ///< List entries consumed before returning.
  bool extrapolated = false;  ///< True if the whole list was consumed and
                              ///  R was extrapolated from the density.
};

/// Runs Algorithm 1. `info_list` is the list L (index 0 = first hop at the
/// sink, back = the home node's own entry). Returns a radius clamped to
/// [r, max_radius].
///
/// When even the full list's density fails to reach k (est_k < k for every
/// prefix — the paper leaves this case implicit), the radius is
/// extrapolated from the accumulated density: R = sqrt(k / (pi * D)).
KnnbResult Knnb(const std::vector<RouteHopInfo>& info_list, const Point& q,
                double r, int k, double max_radius,
                KnnbAreaModel area_model = KnnbAreaModel::kLune);

/// Area of the region inside a disk of radius `r` centered at distance
/// `d` from another equal disk, but outside that other disk (the "lune").
/// Equals pi*r^2 when the disks do not overlap (d >= 2r).
double LuneArea(double r, double d);

/// The conservative boundary used by the original KPT (Winter & Lee): the
/// maximum-hop-distance heuristic R = k * MHD, where MHD is the expected
/// advance of one hop. Grows linearly in k (quadratically in area), which
/// is the behaviour Section 5 criticizes; implemented for the
/// bench_knnb_radius comparison.
double KptConservativeRadius(int k, double mean_hop_distance);

}  // namespace diknn

#endif  // DIKNN_KNN_KNNB_H_
