#include "knn/aggregate.h"

#include <algorithm>
#include <cmath>

#include "knn/itinerary.h"

namespace diknn {

namespace {
constexpr size_t kBootstrapBytes = 24;
constexpr size_t kProbeBytes = 30;
constexpr size_t kResultBytes = 26;
constexpr size_t kSampleBytes = 6;
}  // namespace

ItineraryAggregateQuery::ItineraryAggregateQuery(Network* network,
                                                 GpsrRouting* gpsr,
                                                 SensorField* field,
                                                 WindowQueryParams params)
    : network_(network), gpsr_(gpsr), field_(field), params_(params) {}

double ItineraryAggregateQuery::EffectiveWidth() const {
  return params_.width > 0.0
             ? params_.width
             : DefaultItineraryWidth(network_->config().radio_range_m);
}

void ItineraryAggregateQuery::Install() {
  gpsr_->RegisterDelivery(
      MessageType::kAggQuery,
      [this](Node* node, const GeoRoutedMessage& msg) {
        OnEntryArrival(node, msg);
      });
  gpsr_->RegisterDelivery(
      MessageType::kAggResult,
      [this](Node* node, const GeoRoutedMessage& msg) {
        OnResult(node, msg);
      });
  for (Node* node : network_->AllNodes()) {
    node->RegisterHandler(
        MessageType::kAggProbe, [this, node](const Packet& p) {
          OnProbe(node, *static_cast<const ProbeMessage*>(p.payload.get()));
        });
    node->RegisterHandler(
        MessageType::kAggReply, [this, node](const Packet& p) {
          OnReply(node, *static_cast<const ReplyMessage*>(p.payload.get()));
        });
    node->RegisterHandler(
        MessageType::kAggForward, [this, node](const Packet& p) {
          StartQNode(node,
                     static_cast<const ForwardMessage*>(p.payload.get())
                         ->state);
        });
  }
}

void ItineraryAggregateQuery::IssueQuery(NodeId sink, const Rect& region,
                                         AggregateResultHandler handler) {
  Node* sink_node = network_->node(sink);
  QueryDescriptor query;
  query.id = next_query_id_++;
  query.region = region;
  query.sink = sink;
  query.sink_position = sink_node->Position();

  const SerpentinePath path(region, EffectiveWidth());
  const double expected_hops =
      path.TotalLength() /
      (params_.step_fraction * network_->config().radio_range_m);
  const SimTime timeout =
      std::max(params_.query_timeout, expected_hops * 0.5 + 4.0);

  PendingQuery pending;
  pending.query = query;
  pending.handler = std::move(handler);
  pending.issued_at = network_->sim().Now();
  const uint64_t id = query.id;
  pending.timeout_event = network_->sim().ScheduleAfter(
      timeout, [this, id]() { CompleteQuery(id, true); });
  pending_.emplace(id, std::move(pending));
  ++stats_.queries_issued;

  auto bootstrap = std::make_shared<QueryBootstrap>();
  bootstrap->query = query;
  gpsr_->Send(sink_node, path.PointAt(0.0), MessageType::kAggQuery,
              std::move(bootstrap), kBootstrapBytes,
              EnergyCategory::kQuery);
}

void ItineraryAggregateQuery::OnEntryArrival(Node* node,
                                             const GeoRoutedMessage& msg) {
  const auto* bootstrap =
      static_cast<const QueryBootstrap*>(msg.inner.get());
  SweepState state;
  state.query = bootstrap->query;
  StartQNode(node, std::move(state));
}

void ItineraryAggregateQuery::StartQNode(Node* node, SweepState state) {
  // A forward that outlived its query must not re-seed last_hop_seen_ or
  // open a new collection; the sweep dies here.
  if (!QueryActive(state.query.id)) {
    ++stats_.stale_drops;
    return;
  }
  {
    auto [it, inserted] =
        last_hop_seen_.try_emplace(state.query.id, state.hop_count);
    if (!inserted) {
      if (state.hop_count <= it->second) return;
      it->second = state.hop_count;
    }
  }
  ++stats_.qnode_hops;

  const SimTime now = network_->sim().Now();
  int expected = 0;
  for (const NeighborEntry& n : node->neighbors().Snapshot(now)) {
    if (state.query.region.Contains(n.position)) ++expected;
  }
  const double window_s =
      params_.time_unit * std::clamp(expected / 2 + 1, 3, 20);

  auto probe = std::make_shared<ProbeMessage>();
  probe->query_id = state.query.id;
  probe->region = state.query.region;
  probe->qnode_position = node->Position();
  probe->reference_angle =
      AngleOf(node->Position(), state.query.region.Center());
  probe->collect_window = window_s;

  Collection collection;
  collection.state = std::move(state);
  collection.qnode = node->id();
  const uint64_t id = collection.state.query.id;
  // A deeper fork supersedes an open collection; cancel the superseded
  // finish timer so it cannot close the new collection early.
  if (auto old = collections_.find(id); old != collections_.end()) {
    network_->sim().Cancel(old->second.finish_event);
  }
  auto [cit, unused] = collections_.insert_or_assign(id, std::move(collection));

  node->SendBroadcast(MessageType::kAggProbe, std::move(probe),
                      kProbeBytes, EnergyCategory::kQuery);
  cit->second.finish_event = network_->sim().ScheduleAfter(
      window_s + 5.0 * params_.time_unit,
      [this, id]() { FinishCollection(id); });
}

void ItineraryAggregateQuery::OnProbe(Node* node,
                                      const ProbeMessage& probe) {
  if (node->is_infrastructure()) return;
  if (!QueryActive(probe.query_id)) {
    ++stats_.stale_drops;
    return;
  }
  if (!probe.region.Contains(node->Position())) return;
  auto& replied = replied_[probe.query_id];
  if (replied.contains(node->id())) return;
  replied.insert(node->id());

  const double alpha = NormalizeAngle(
      AngleOf(probe.qnode_position, node->Position()) -
      probe.reference_angle);
  const double delay = (alpha / kTwoPi) * probe.collect_window;
  const uint64_t query_id = probe.query_id;
  // The un-mark paths below must not use operator[]: after the query
  // completes and its replied_ entry is torn down, indexing would
  // resurrect it as permanent residue.
  const auto unmark = [this](uint64_t qid, NodeId nid) {
    auto rit = replied_.find(qid);
    if (rit != replied_.end()) rit->second.erase(nid);
  };
  network_->sim().ScheduleAfter(delay, [this, node, query_id, unmark]() {
    if (!node->alive()) return;
    auto it = collections_.find(query_id);
    if (it == collections_.end()) {
      unmark(query_id, node->id());
      return;
    }
    auto reply = std::make_shared<ReplyMessage>();
    reply->query_id = query_id;
    reply->sample =
        field_->Sample(node->Position(), network_->sim().Now());
    node->SendUnicast(it->second.qnode, MessageType::kAggReply,
                      std::move(reply), kSampleBytes,
                      EnergyCategory::kQuery,
                      [query_id, node, unmark](bool ok) {
                        if (!ok) unmark(query_id, node->id());
                      });
    ++stats_.replies;
  });
}

void ItineraryAggregateQuery::OnReply(Node* node,
                                      const ReplyMessage& reply) {
  auto it = collections_.find(reply.query_id);
  if (it == collections_.end() || it->second.qnode != node->id()) return;
  it->second.replies.Fold(reply.sample);
}

void ItineraryAggregateQuery::FinishCollection(uint64_t query_id) {
  auto it = collections_.find(query_id);
  if (it == collections_.end()) return;
  Collection collection = std::move(it->second);
  collections_.erase(it);
  if (!QueryActive(query_id)) {
    ++stats_.stale_drops;
    return;
  }

  Node* node = network_->node(collection.qnode);
  SweepState& state = collection.state;
  state.aggregate.Merge(collection.replies);
  if (!node->is_infrastructure() &&
      state.query.region.Contains(node->Position()) &&
      replied_[query_id].insert(node->id()).second) {
    state.aggregate.Fold(
        field_->Sample(node->Position(), network_->sim().Now()));
  }
  ForwardAlongSweep(node, std::move(state));
}

void ItineraryAggregateQuery::ForwardAlongSweep(Node* node,
                                                SweepState state) {
  // Also reached from unicast-failure retries, which may fire after the
  // query completed; a dead query's sweep must not keep hopping.
  if (!QueryActive(state.query.id)) {
    ++stats_.stale_drops;
    return;
  }
  const SimTime now = network_->sim().Now();
  const double step =
      params_.step_fraction * network_->config().radio_range_m;
  const SerpentinePath path(state.query.region, EffectiveWidth());

  double next_s = state.progress + step;
  int skips = 0;
  while (true) {
    if (next_s > path.TotalLength()) {
      FinishSweep(node, std::move(state));
      return;
    }
    const Point anchor = path.PointAt(next_s);
    const auto neighbors = node->neighbors().Snapshot(now);
    const NeighborEntry* next_qnode = nullptr;
    double best_d = Distance(node->Position(), anchor);
    const double tolerance = EffectiveWidth() / 2.0;
    for (const NeighborEntry& n : neighbors) {
      const double d = Distance(n.position, anchor);
      if ((d < best_d || d <= tolerance) &&
          (next_qnode == nullptr || d < best_d)) {
        best_d = d;
        next_qnode = &n;
      }
    }
    if (next_qnode == nullptr) {
      ++stats_.voids;
      if (++skips > params_.max_void_skips) {
        FinishSweep(node, std::move(state));
        return;
      }
      next_s += step;
      continue;
    }

    SweepState retry_state = state;
    state.progress = next_s;
    ++state.hop_count;
    auto fwd = std::make_shared<ForwardMessage>();
    fwd->state = std::move(state);
    const size_t bytes = fwd->state.WireBytes();
    const NodeId next_id = next_qnode->id;
    node->SendUnicast(next_id, MessageType::kAggForward, std::move(fwd),
                      bytes, EnergyCategory::kQuery,
                      [this, node, next_id, retry_state](bool ok) mutable {
                        if (ok) return;
                        auto it =
                            last_hop_seen_.find(retry_state.query.id);
                        if (it != last_hop_seen_.end() &&
                            it->second > retry_state.hop_count) {
                          return;
                        }
                        node->neighbors().Remove(next_id);
                        ForwardAlongSweep(node, std::move(retry_state));
                      });
    return;
  }
}

void ItineraryAggregateQuery::FinishSweep(Node* node, SweepState state) {
  auto result = std::make_shared<ResultMessage>();
  result->query_id = state.query.id;
  result->value = state.aggregate;
  gpsr_->Send(node, state.query.sink_position, MessageType::kAggResult,
              std::move(result), kResultBytes, EnergyCategory::kQuery,
              false, state.query.sink);
}

void ItineraryAggregateQuery::OnResult(Node* node,
                                       const GeoRoutedMessage& msg) {
  const auto* result = static_cast<const ResultMessage*>(msg.inner.get());
  auto it = pending_.find(result->query_id);
  if (it == pending_.end()) return;
  PendingQuery& pending = it->second;
  if (node->id() != pending.query.sink || pending.completed) return;

  pending.completed = true;
  network_->sim().Cancel(pending.timeout_event);
  ++stats_.queries_completed;

  AggregateResult out;
  out.query_id = result->query_id;
  out.value = result->value;
  out.issued_at = pending.issued_at;
  out.completed_at = network_->sim().Now();

  AggregateResultHandler handler = std::move(pending.handler);
  pending_.erase(it);
  TeardownQueryState(result->query_id);
  if (handler) handler(out);
}

void ItineraryAggregateQuery::TeardownQueryState(uint64_t query_id) {
  replied_.erase(query_id);
  last_hop_seen_.erase(query_id);
  auto cit = collections_.find(query_id);
  if (cit != collections_.end()) {
    network_->sim().Cancel(cit->second.finish_event);
    collections_.erase(cit);
    ++stats_.collections_cancelled;
  }
}

void ItineraryAggregateQuery::CompleteQuery(uint64_t query_id,
                                            bool timed_out) {
  auto it = pending_.find(query_id);
  if (it == pending_.end() || it->second.completed) return;
  PendingQuery& pending = it->second;
  pending.completed = true;
  if (timed_out) ++stats_.timeouts;

  AggregateResult out;
  out.query_id = query_id;
  out.issued_at = pending.issued_at;
  out.completed_at = network_->sim().Now();
  out.timed_out = timed_out;

  AggregateResultHandler handler = std::move(pending.handler);
  pending_.erase(it);
  TeardownQueryState(query_id);
  if (handler) handler(out);
}

}  // namespace diknn
