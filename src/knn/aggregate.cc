#include "knn/aggregate.h"

#include <algorithm>
#include <cmath>

#include "knn/itinerary.h"
#include "net/packet_pool.h"

namespace diknn {

namespace {
constexpr size_t kBootstrapBytes = 24;
constexpr size_t kProbeBytes = 30;
constexpr size_t kResultBytes = 26;
constexpr size_t kSampleBytes = 6;
}  // namespace

ItineraryAggregateQuery::ItineraryAggregateQuery(Network* network,
                                                 GpsrRouting* gpsr,
                                                 SensorField* field,
                                                 WindowQueryParams params)
    : network_(network), gpsr_(gpsr), field_(field), params_(params) {}

double ItineraryAggregateQuery::EffectiveWidth() const {
  return params_.width > 0.0
             ? params_.width
             : DefaultItineraryWidth(network_->config().radio_range_m);
}

FlatSet<NodeId>& ItineraryAggregateQuery::RepliedFor(uint64_t query_id) {
  auto [kv, inserted] = replied_.TryEmplace(query_id);
  if (inserted && !replied_freelist_.empty()) {
    kv->second = std::move(replied_freelist_.back());
    replied_freelist_.pop_back();
  }
  return kv->second;
}

void ItineraryAggregateQuery::RecycleReplied(uint64_t query_id) {
  FlatSet<NodeId>* replied = replied_.find(query_id);
  if (replied == nullptr) return;
  replied->clear();
  replied_freelist_.push_back(std::move(*replied));
  replied_.erase(query_id);
}

void ItineraryAggregateQuery::Install() {
  gpsr_->RegisterDelivery(
      MessageType::kAggQuery,
      [this](Node* node, const GeoRoutedMessage& msg) {
        AllocScope scope(&knn_allocs_);
        OnEntryArrival(node, msg);
      });
  gpsr_->RegisterDelivery(
      MessageType::kAggResult,
      [this](Node* node, const GeoRoutedMessage& msg) {
        AllocScope scope(&knn_allocs_);
        OnResult(node, msg);
      });
  for (Node* node : network_->AllNodes()) {
    node->RegisterHandler(
        MessageType::kAggProbe, [this, node](const Packet& p) {
          AllocScope scope(&knn_allocs_);
          OnProbe(node, *static_cast<const ProbeMessage*>(p.payload.get()));
        });
    node->RegisterHandler(
        MessageType::kAggReply, [this, node](const Packet& p) {
          AllocScope scope(&knn_allocs_);
          OnReply(node, *static_cast<const ReplyMessage*>(p.payload.get()));
        });
    node->RegisterHandler(
        MessageType::kAggForward, [this, node](const Packet& p) {
          AllocScope scope(&knn_allocs_);
          StartQNode(node,
                     static_cast<const ForwardMessage*>(p.payload.get())
                         ->state);
        });
  }
}

void ItineraryAggregateQuery::IssueQuery(NodeId sink, const Rect& region,
                                         AggregateResultHandler handler) {
  AllocScope scope(&knn_allocs_);
  Node* sink_node = network_->node(sink);
  QueryDescriptor query;
  query.id = next_query_id_++;
  query.region = region;
  query.sink = sink;
  query.sink_position = sink_node->Position();

  const SerpentinePath path(region, EffectiveWidth());
  const double expected_hops =
      path.TotalLength() /
      (params_.step_fraction * network_->config().radio_range_m);
  const SimTime timeout =
      std::max(params_.query_timeout, expected_hops * 0.5 + 4.0);

  PendingQuery pending;
  pending.query = query;
  pending.handler = std::move(handler);
  pending.issued_at = network_->sim().Now();
  const uint64_t id = query.id;
  pending.timeout_event = network_->sim().ScheduleAfter(
      timeout, [this, id]() { CompleteQuery(id, true); });
  pending_.TryEmplace(id, std::move(pending));
  ++stats_.queries_issued;

  auto bootstrap = MessagePool::Make<QueryBootstrap>();
  bootstrap->query = query;
  gpsr_->Send(sink_node, path.PointAt(0.0), MessageType::kAggQuery,
              std::move(bootstrap), kBootstrapBytes,
              EnergyCategory::kQuery);
}

void ItineraryAggregateQuery::OnEntryArrival(Node* node,
                                             const GeoRoutedMessage& msg) {
  const auto* bootstrap =
      static_cast<const QueryBootstrap*>(msg.inner.get());
  SweepState state;
  state.query = bootstrap->query;
  StartQNode(node, std::move(state));
}

void ItineraryAggregateQuery::StartQNode(Node* node, SweepState state) {
  // A forward that outlived its query must not re-seed last_hop_seen_ or
  // open a new collection; the sweep dies here.
  if (!QueryActive(state.query.id)) {
    ++stats_.stale_drops;
    return;
  }
  {
    auto [kv, inserted] =
        last_hop_seen_.TryEmplace(state.query.id, state.hop_count);
    if (!inserted) {
      if (state.hop_count <= kv->second) return;
      kv->second = state.hop_count;
    }
  }
  ++stats_.qnode_hops;

  const SimTime now = network_->sim().Now();
  int expected = 0;
  node->neighbors().ForEachFresh(now, [&](const NeighborEntry& n) {
    if (state.query.region.Contains(n.position)) ++expected;
  });
  const double window_s =
      params_.time_unit * std::clamp(expected / 2 + 1, 3, 20);

  auto probe = MessagePool::Make<ProbeMessage>();
  probe->query_id = state.query.id;
  probe->region = state.query.region;
  probe->qnode_position = node->Position();
  probe->reference_angle =
      AngleOf(node->Position(), state.query.region.Center());
  probe->collect_window = window_s;

  const uint64_t id = state.query.id;
  Collection collection;
  collection.state = std::move(state);
  collection.qnode = node->id();
  // A deeper fork supersedes an open collection; cancel the superseded
  // finish timer so it cannot close the new collection early.
  if (Collection* old = collections_.find(id)) {
    network_->sim().Cancel(old->finish_event);
  }
  collections_.InsertOrAssign(id, std::move(collection));

  node->SendBroadcast(MessageType::kAggProbe, std::move(probe),
                      kProbeBytes, EnergyCategory::kQuery);
  collections_.find(id)->finish_event = network_->sim().ScheduleAfter(
      window_s + 5.0 * params_.time_unit,
      [this, id]() { FinishCollection(id); });
}

void ItineraryAggregateQuery::OnProbe(Node* node,
                                      const ProbeMessage& probe) {
  if (node->is_infrastructure()) return;
  if (!QueryActive(probe.query_id)) {
    ++stats_.stale_drops;
    return;
  }
  if (!probe.region.Contains(node->Position())) return;
  FlatSet<NodeId>& replied = RepliedFor(probe.query_id);
  if (replied.contains(node->id())) return;
  replied.insert(node->id());

  const double alpha = NormalizeAngle(
      AngleOf(probe.qnode_position, node->Position()) -
      probe.reference_angle);
  const double delay = (alpha / kTwoPi) * probe.collect_window;
  const uint64_t query_id = probe.query_id;
  // The un-mark paths below must not use RepliedFor: after the query
  // completes and its replied_ entry is torn down, re-creating it would
  // leave permanent residue.
  const auto unmark = [this](uint64_t qid, NodeId nid) {
    if (FlatSet<NodeId>* r = replied_.find(qid)) r->erase(nid);
  };
  network_->sim().ScheduleAfter(delay, [this, node, query_id, unmark]() {
    AllocScope scope(&knn_allocs_);
    if (!node->alive()) return;
    Collection* collection = collections_.find(query_id);
    if (collection == nullptr) {
      unmark(query_id, node->id());
      return;
    }
    auto reply = MessagePool::Make<ReplyMessage>();
    reply->query_id = query_id;
    reply->sample =
        field_->Sample(node->Position(), network_->sim().Now());
    node->SendUnicast(collection->qnode, MessageType::kAggReply,
                      std::move(reply), kSampleBytes,
                      EnergyCategory::kQuery,
                      [query_id, node, unmark](bool ok) {
                        if (!ok) unmark(query_id, node->id());
                      });
    ++stats_.replies;
  });
}

void ItineraryAggregateQuery::OnReply(Node* node,
                                      const ReplyMessage& reply) {
  Collection* collection = collections_.find(reply.query_id);
  if (collection == nullptr || collection->qnode != node->id()) return;
  collection->replies.Fold(reply.sample);
}

void ItineraryAggregateQuery::FinishCollection(uint64_t query_id) {
  AllocScope scope(&knn_allocs_);
  Collection* found = collections_.find(query_id);
  if (found == nullptr) return;
  Collection collection = std::move(*found);
  collections_.erase(query_id);
  if (!QueryActive(query_id)) {
    ++stats_.stale_drops;
    return;
  }

  Node* node = network_->node(collection.qnode);
  SweepState& state = collection.state;
  state.aggregate.Merge(collection.replies);
  if (!node->is_infrastructure() &&
      state.query.region.Contains(node->Position()) &&
      RepliedFor(query_id).insert(node->id())) {
    state.aggregate.Fold(
        field_->Sample(node->Position(), network_->sim().Now()));
  }
  ForwardAlongSweep(node, std::move(state));
}

void ItineraryAggregateQuery::ForwardAlongSweep(Node* node,
                                                SweepState state) {
  // Also reached from unicast-failure retries, which may fire after the
  // query completed; a dead query's sweep must not keep hopping.
  if (!QueryActive(state.query.id)) {
    ++stats_.stale_drops;
    return;
  }
  const SimTime now = network_->sim().Now();
  const double step =
      params_.step_fraction * network_->config().radio_range_m;
  const SerpentinePath path(state.query.region, EffectiveWidth());

  double next_s = state.progress + step;
  int skips = 0;
  while (true) {
    if (next_s > path.TotalLength()) {
      FinishSweep(node, std::move(state));
      return;
    }
    const Point anchor = path.PointAt(next_s);
    NodeId next_id = kInvalidNodeId;
    double best_d = Distance(node->Position(), anchor);
    const double tolerance = EffectiveWidth() / 2.0;
    node->neighbors().ForEachFresh(now, [&](const NeighborEntry& n) {
      const double d = Distance(n.position, anchor);
      if ((d < best_d || d <= tolerance) &&
          (next_id == kInvalidNodeId || d < best_d)) {
        best_d = d;
        next_id = n.id;
      }
    });
    if (next_id == kInvalidNodeId) {
      ++stats_.voids;
      if (++skips > params_.max_void_skips) {
        FinishSweep(node, std::move(state));
        return;
      }
      next_s += step;
      continue;
    }

    // The pre-advance retry copy rides a pooled envelope: SweepState is
    // ~112 bytes, far past the inline-callback budget, so capturing it
    // by value would heap-allocate on every hop.
    auto retry = MessagePool::Make<ForwardMessage>();
    retry->state = state;
    state.progress = next_s;
    ++state.hop_count;
    auto fwd = MessagePool::Make<ForwardMessage>();
    fwd->state = std::move(state);
    const size_t bytes = fwd->state.WireBytes();
    node->SendUnicast(next_id, MessageType::kAggForward, std::move(fwd),
                      bytes, EnergyCategory::kQuery,
                      [this, node, next_id, retry](bool ok) mutable {
                        if (ok) return;
                        AllocScope scope(&knn_allocs_);
                        const int* last =
                            last_hop_seen_.find(retry->state.query.id);
                        if (last != nullptr &&
                            *last > retry->state.hop_count) {
                          return;
                        }
                        node->neighbors().Remove(next_id);
                        ForwardAlongSweep(node, std::move(retry->state));
                      });
    return;
  }
}

void ItineraryAggregateQuery::FinishSweep(Node* node, SweepState state) {
  auto result = MessagePool::Make<ResultMessage>();
  result->query_id = state.query.id;
  result->value = state.aggregate;
  gpsr_->Send(node, state.query.sink_position, MessageType::kAggResult,
              std::move(result), kResultBytes, EnergyCategory::kQuery,
              false, state.query.sink);
}

void ItineraryAggregateQuery::OnResult(Node* node,
                                       const GeoRoutedMessage& msg) {
  const auto* result = static_cast<const ResultMessage*>(msg.inner.get());
  PendingQuery* found = pending_.find(result->query_id);
  if (found == nullptr) return;
  PendingQuery& pending = *found;
  if (node->id() != pending.query.sink || pending.completed) return;

  pending.completed = true;
  network_->sim().Cancel(pending.timeout_event);
  ++stats_.queries_completed;

  AggregateResult out;
  out.query_id = result->query_id;
  out.value = result->value;
  out.issued_at = pending.issued_at;
  out.completed_at = network_->sim().Now();

  AggregateResultHandler handler = std::move(pending.handler);
  pending_.erase(result->query_id);
  TeardownQueryState(result->query_id);
  if (handler) handler(out);
}

void ItineraryAggregateQuery::TeardownQueryState(uint64_t query_id) {
  RecycleReplied(query_id);
  last_hop_seen_.erase(query_id);
  if (Collection* open = collections_.find(query_id)) {
    network_->sim().Cancel(open->finish_event);
    collections_.erase(query_id);
    ++stats_.collections_cancelled;
  }
}

void ItineraryAggregateQuery::CompleteQuery(uint64_t query_id,
                                            bool timed_out) {
  AllocScope scope(&knn_allocs_);
  PendingQuery* found = pending_.find(query_id);
  if (found == nullptr || found->completed) return;
  PendingQuery& pending = *found;
  pending.completed = true;
  if (timed_out) ++stats_.timeouts;

  AggregateResult out;
  out.query_id = query_id;
  out.issued_at = pending.issued_at;
  out.completed_at = network_->sim().Now();
  out.timed_out = timed_out;

  AggregateResultHandler handler = std::move(pending.handler);
  pending_.erase(query_id);
  TeardownQueryState(query_id);
  if (handler) handler(out);
}

}  // namespace diknn
