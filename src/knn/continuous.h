// Continuous KNN monitoring on top of snapshot DIKNN.
//
// The paper scopes itself to snapshot (one-shot) queries and defers
// long-standing monitoring to the continuous-query literature it surveys
// in Section 2. This module provides that extension in the natural
// infrastructure-free way: a subscription re-issues the snapshot query on
// a period and delivers *deltas* (nodes entering/leaving the KNN set) to
// the application, so a monitoring client pays attention only when the
// answer actually changes.

#ifndef DIKNN_KNN_CONTINUOUS_H_
#define DIKNN_KNN_CONTINUOUS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/flat_map.h"
#include "knn/query.h"
#include "net/network.h"

namespace diknn {

/// One round's outcome for a continuous subscription.
struct KnnUpdate {
  uint64_t subscription_id = 0;
  int round = 0;              ///< 0-based refresh counter.
  KnnResult result;           ///< Full snapshot result of this round.
  std::vector<NodeId> added;   ///< Entered the KNN set since last round.
  std::vector<NodeId> removed; ///< Left the KNN set since last round.

  bool Changed() const { return !added.empty() || !removed.empty(); }
};

using KnnUpdateHandler = std::function<void(const KnnUpdate&)>;

/// Periodic re-issue of a snapshot KNN query with result diffing.
class ContinuousKnn {
 public:
  /// `protocol` executes the underlying snapshot queries and must outlive
  /// this object (any KnnProtocol works: DIKNN, KPT, ...).
  ContinuousKnn(Network* network, KnnProtocol* protocol);

  /// Starts a subscription: query (sink, q, k) every `period` seconds for
  /// `rounds` rounds (0 = until Cancel()). The handler fires once per
  /// completed round. Returns the subscription id.
  uint64_t Subscribe(NodeId sink, Point q, int k, SimTime period,
                     int rounds, KnnUpdateHandler handler);

  /// Stops a subscription; in-flight rounds are dropped silently.
  void Cancel(uint64_t subscription_id);

  /// Number of live subscriptions.
  size_t ActiveSubscriptions() const { return subscriptions_.size(); }

 private:
  struct Subscription {
    NodeId sink = kInvalidNodeId;
    Point q;
    int k = 1;
    SimTime period = 0;
    int rounds_left = 0;   ///< Remaining rounds; -1 = unbounded.
    int round = 0;
    KnnUpdateHandler handler;
    FlatSet<NodeId> last_ids;
  };

  void IssueRound(uint64_t id);

  Network* network_;
  KnnProtocol* protocol_;
  uint64_t next_id_ = 1;
  FlatMap<uint64_t, Subscription> subscriptions_;
};

}  // namespace diknn

#endif  // DIKNN_KNN_CONTINUOUS_H_
