#include "knn/query.h"

#include <algorithm>
#include <unordered_map>

namespace diknn {

std::vector<NodeId> KnnResult::CandidateIds() const {
  std::vector<NodeId> ids;
  ids.reserve(candidates.size());
  for (const KnnCandidate& c : candidates) ids.push_back(c.id);
  return ids;
}

void PruneCandidates(std::vector<KnnCandidate>* candidates, const Point& q,
                     size_t count) {
  // Deduplicate by id, keeping the most recent report for each node.
  std::unordered_map<NodeId, KnnCandidate> freshest;
  for (const KnnCandidate& c : *candidates) {
    auto [it, inserted] = freshest.try_emplace(c.id, c);
    if (!inserted && c.sampled_at > it->second.sampled_at) it->second = c;
  }
  candidates->clear();
  candidates->reserve(freshest.size());
  for (auto& [id, c] : freshest) candidates->push_back(c);

  std::sort(candidates->begin(), candidates->end(),
            [&q](const KnnCandidate& a, const KnnCandidate& b) {
              const double da = SquaredDistance(a.position, q);
              const double db = SquaredDistance(b.position, q);
              if (da != db) return da < db;
              return a.id < b.id;
            });
  if (candidates->size() > count) candidates->resize(count);
}

}  // namespace diknn
