#include "knn/window.h"

#include <algorithm>
#include <cmath>

#include "knn/itinerary.h"

namespace diknn {

namespace {
constexpr size_t kBootstrapBytes = 22;
constexpr size_t kProbeBytes = 30;
constexpr size_t kCandidateBytes = 12;
}  // namespace

SerpentinePath::SerpentinePath(const Rect& window, double spacing)
    : window_(window), spacing_(spacing) {
  // Scan lines at heights min.y + w/2, min.y + 3w/2, ..., covering the
  // window with a w/2 margin above and below each line.
  num_lines_ = std::max(
      1, static_cast<int>(std::ceil(window.Height() / spacing_)));
  total_length_ =
      num_lines_ * window_.Width() + (num_lines_ - 1) * spacing_;
}

Point SerpentinePath::PointAt(double s) const {
  s = std::clamp(s, 0.0, total_length_);
  const double segment = window_.Width() + spacing_;  // Line + riser.
  int line = static_cast<int>(s / segment);
  if (line >= num_lines_) line = num_lines_ - 1;
  const double offset = s - line * segment;

  const double y0 = std::min(window_.min.y + spacing_ / 2.0, window_.max.y);
  const double y = std::min(y0 + line * spacing_, window_.max.y);
  const bool rightward = (line % 2) == 0;

  if (offset <= window_.Width()) {
    const double x = rightward ? window_.min.x + offset
                               : window_.max.x - offset;
    return {x, y};
  }
  // Riser between this line and the next.
  const double up = offset - window_.Width();
  const double x = rightward ? window_.max.x : window_.min.x;
  return {x, std::min(y + up, window_.max.y)};
}

ItineraryWindowQuery::ItineraryWindowQuery(Network* network,
                                           GpsrRouting* gpsr,
                                           WindowQueryParams params)
    : network_(network), gpsr_(gpsr), params_(params) {}

double ItineraryWindowQuery::EffectiveWidth() const {
  return params_.width > 0.0
             ? params_.width
             : DefaultItineraryWidth(network_->config().radio_range_m);
}

void ItineraryWindowQuery::Install() {
  gpsr_->RegisterDelivery(
      MessageType::kWindowQuery,
      [this](Node* node, const GeoRoutedMessage& msg) {
        OnEntryArrival(node, msg);
      });
  gpsr_->RegisterDelivery(
      MessageType::kWindowResult,
      [this](Node* node, const GeoRoutedMessage& msg) {
        OnResult(node, msg);
      });
  for (Node* node : network_->AllNodes()) {
    node->RegisterHandler(
        MessageType::kWindowProbe, [this, node](const Packet& p) {
          OnProbe(node, *static_cast<const ProbeMessage*>(p.payload.get()));
        });
    node->RegisterHandler(
        MessageType::kWindowReply, [this, node](const Packet& p) {
          OnReply(node, *static_cast<const ReplyMessage*>(p.payload.get()));
        });
    node->RegisterHandler(
        MessageType::kWindowForward, [this, node](const Packet& p) {
          StartQNode(node,
                     static_cast<const ForwardMessage*>(p.payload.get())
                         ->state);
        });
  }
}

void ItineraryWindowQuery::IssueQuery(NodeId sink, const Rect& window,
                                      WindowResultHandler handler) {
  Node* sink_node = network_->node(sink);
  WindowQuery query;
  query.id = next_query_id_++;
  query.window = window;
  query.sink = sink;
  query.sink_position = sink_node->Position();

  // Budget the timeout for the sweep's actual length: one Q-node hop per
  // step_fraction * r of path, at roughly half a second per hop, plus
  // routing slack.
  const SerpentinePath path(window, EffectiveWidth());
  const double per_hop = 0.5;
  const double expected_hops =
      path.TotalLength() /
      (params_.step_fraction * network_->config().radio_range_m);
  const SimTime timeout =
      std::max(params_.query_timeout, expected_hops * per_hop + 4.0);

  PendingQuery pending;
  pending.query = query;
  pending.handler = std::move(handler);
  pending.issued_at = network_->sim().Now();
  const uint64_t id = query.id;
  pending.timeout_event = network_->sim().ScheduleAfter(
      timeout, [this, id]() { CompleteQuery(id, true); });
  pending_.emplace(id, std::move(pending));
  ++stats_.queries_issued;

  // Enter the sweep at the start of the serpentine path (the window's
  // lower-left scan line).
  auto bootstrap = std::make_shared<QueryBootstrap>();
  bootstrap->query = query;
  gpsr_->Send(sink_node, path.PointAt(0.0), MessageType::kWindowQuery,
              std::move(bootstrap), kBootstrapBytes, EnergyCategory::kQuery);
}

void ItineraryWindowQuery::OnEntryArrival(Node* node,
                                          const GeoRoutedMessage& msg) {
  const auto* bootstrap =
      static_cast<const QueryBootstrap*>(msg.inner.get());
  SweepState state;
  state.query = bootstrap->query;
  state.progress = 0.0;
  StartQNode(node, std::move(state));
}

void ItineraryWindowQuery::StartQNode(Node* node, SweepState state) {
  // A forward that outlived its query must not re-seed last_hop_seen_ or
  // open a new collection; the sweep dies here.
  if (!QueryActive(state.query.id)) {
    ++stats_.stale_drops;
    return;
  }
  // Fork suppression, as in DIKNN (see diknn.h).
  {
    auto [it, inserted] =
        last_hop_seen_.try_emplace(state.query.id, state.hop_count);
    if (!inserted) {
      if (state.hop_count <= it->second) return;
      it->second = state.hop_count;
    }
  }
  ++stats_.qnode_hops;

  const SimTime now = network_->sim().Now();
  int expected = 0;
  for (const NeighborEntry& n : node->neighbors().Snapshot(now)) {
    if (state.query.window.Contains(n.position)) ++expected;
  }
  const double window_s =
      params_.time_unit * std::clamp(expected / 2 + 1, 3, 20);

  auto probe = std::make_shared<ProbeMessage>();
  probe->query_id = state.query.id;
  probe->window = state.query.window;
  probe->qnode_position = node->Position();
  probe->reference_angle =
      AngleOf(node->Position(), state.query.window.Center());
  probe->collect_window = window_s;

  Collection collection;
  collection.state = std::move(state);
  collection.qnode = node->id();
  const uint64_t id = collection.state.query.id;
  // A deeper fork supersedes an open collection; cancel the superseded
  // finish timer so it cannot close the new collection early.
  if (auto old = collections_.find(id); old != collections_.end()) {
    network_->sim().Cancel(old->second.finish_event);
  }
  auto [cit, unused] = collections_.insert_or_assign(id, std::move(collection));

  node->SendBroadcast(MessageType::kWindowProbe, std::move(probe),
                      kProbeBytes, EnergyCategory::kQuery);
  cit->second.finish_event = network_->sim().ScheduleAfter(
      window_s + 5.0 * params_.time_unit,
      [this, id]() { FinishCollection(id); });
}

void ItineraryWindowQuery::OnProbe(Node* node, const ProbeMessage& probe) {
  if (node->is_infrastructure()) return;
  if (!QueryActive(probe.query_id)) {
    ++stats_.stale_drops;
    return;
  }
  if (!probe.window.Contains(node->Position())) return;
  auto& replied = replied_[probe.query_id];
  if (replied.contains(node->id())) return;
  replied.insert(node->id());

  const double alpha = NormalizeAngle(
      AngleOf(probe.qnode_position, node->Position()) -
      probe.reference_angle);
  const double delay = (alpha / kTwoPi) * probe.collect_window;
  const uint64_t query_id = probe.query_id;
  // The un-mark paths below must not use operator[]: after the query
  // completes and its replied_ entry is torn down, indexing would
  // resurrect it as permanent residue.
  const auto unmark = [this](uint64_t qid, NodeId nid) {
    auto rit = replied_.find(qid);
    if (rit != replied_.end()) rit->second.erase(nid);
  };
  network_->sim().ScheduleAfter(delay, [this, node, query_id, unmark]() {
    if (!node->alive()) return;
    auto it = collections_.find(query_id);
    if (it == collections_.end()) {
      unmark(query_id, node->id());
      return;
    }
    auto reply = std::make_shared<ReplyMessage>();
    reply->query_id = query_id;
    reply->candidate.id = node->id();
    reply->candidate.position = node->Position();
    reply->candidate.speed = node->Speed();
    reply->candidate.sampled_at = network_->sim().Now();
    node->SendUnicast(it->second.qnode, MessageType::kWindowReply,
                      std::move(reply), kQueryResponseBytes,
                      EnergyCategory::kQuery,
                      [query_id, node, unmark](bool ok) {
                        if (!ok) unmark(query_id, node->id());
                      });
    ++stats_.replies;
  });
}

void ItineraryWindowQuery::OnReply(Node* node, const ReplyMessage& reply) {
  auto it = collections_.find(reply.query_id);
  if (it == collections_.end() || it->second.qnode != node->id()) return;
  it->second.replies.push_back(reply.candidate);
}

void ItineraryWindowQuery::FinishCollection(uint64_t query_id) {
  auto it = collections_.find(query_id);
  if (it == collections_.end()) return;
  Collection collection = std::move(it->second);
  collections_.erase(it);
  if (!QueryActive(query_id)) {
    ++stats_.stale_drops;
    return;
  }

  Node* node = network_->node(collection.qnode);
  SweepState& state = collection.state;
  for (const KnnCandidate& c : collection.replies) {
    state.collected.push_back(c);
  }
  if (!node->is_infrastructure() &&
      state.query.window.Contains(node->Position()) &&
      replied_[query_id].insert(node->id()).second) {
    KnnCandidate self;
    self.id = node->id();
    self.position = node->Position();
    self.speed = node->Speed();
    self.sampled_at = network_->sim().Now();
    state.collected.push_back(self);
  }
  ForwardAlongSweep(node, std::move(state));
}

void ItineraryWindowQuery::ForwardAlongSweep(Node* node, SweepState state) {
  // Also reached from unicast-failure retries, which may fire after the
  // query completed; a dead query's sweep must not keep hopping.
  if (!QueryActive(state.query.id)) {
    ++stats_.stale_drops;
    return;
  }
  const SimTime now = network_->sim().Now();
  const double step =
      params_.step_fraction * network_->config().radio_range_m;
  const SerpentinePath path(state.query.window, EffectiveWidth());

  double next_s = state.progress + step;
  int skips = 0;
  while (true) {
    if (next_s > path.TotalLength()) {
      FinishSweep(node, std::move(state));
      return;
    }
    const Point anchor = path.PointAt(next_s);
    const auto neighbors = node->neighbors().Snapshot(now);
    const NeighborEntry* next_qnode = nullptr;
    double best_d = Distance(node->Position(), anchor);
    const double tolerance = EffectiveWidth() / 2.0;
    for (const NeighborEntry& n : neighbors) {
      const double d = Distance(n.position, anchor);
      if ((d < best_d || d <= tolerance) &&
          (next_qnode == nullptr || d < best_d)) {
        best_d = d;
        next_qnode = &n;
      }
    }
    if (next_qnode == nullptr) {
      ++stats_.voids;
      if (++skips > params_.max_void_skips) {
        FinishSweep(node, std::move(state));
        return;
      }
      next_s += step;
      continue;
    }

    SweepState retry_state = state;
    state.progress = next_s;
    ++state.hop_count;
    auto fwd = std::make_shared<ForwardMessage>();
    fwd->state = std::move(state);
    const size_t bytes = fwd->state.WireBytes();
    const NodeId next_id = next_qnode->id;
    node->SendUnicast(next_id, MessageType::kWindowForward, std::move(fwd),
                      bytes, EnergyCategory::kQuery,
                      [this, node, next_id, retry_state](bool ok) mutable {
                        if (ok) return;
                        auto it =
                            last_hop_seen_.find(retry_state.query.id);
                        if (it != last_hop_seen_.end() &&
                            it->second > retry_state.hop_count) {
                          return;  // The traversal is already ahead.
                        }
                        node->neighbors().Remove(next_id);
                        ForwardAlongSweep(node, std::move(retry_state));
                      });
    return;
  }
}

void ItineraryWindowQuery::FinishSweep(Node* node, SweepState state) {
  auto result = std::make_shared<ResultMessage>();
  result->query_id = state.query.id;
  result->nodes = std::move(state.collected);
  const size_t bytes = 10 + result->nodes.size() * kCandidateBytes;
  gpsr_->Send(node, state.query.sink_position, MessageType::kWindowResult,
              std::move(result), bytes, EnergyCategory::kQuery, false,
              state.query.sink);
}

void ItineraryWindowQuery::OnResult(Node* node, const GeoRoutedMessage& msg) {
  const auto* result = static_cast<const ResultMessage*>(msg.inner.get());
  auto it = pending_.find(result->query_id);
  if (it == pending_.end()) return;
  PendingQuery& pending = it->second;
  if (node->id() != pending.query.sink || pending.completed) return;

  pending.completed = true;
  network_->sim().Cancel(pending.timeout_event);
  ++stats_.queries_completed;

  WindowResult out;
  out.query_id = result->query_id;
  out.nodes = result->nodes;
  out.issued_at = pending.issued_at;
  out.completed_at = network_->sim().Now();
  // Deduplicate (forks may have double-collected) and drop anything the
  // sweep picked up that has since left the window... reports reflect
  // collection-time positions, so keep them; dedup only.
  PruneCandidates(&out.nodes, pending.query.window.Center(),
                  out.nodes.size());

  WindowResultHandler handler = std::move(pending.handler);
  pending_.erase(it);
  TeardownQueryState(result->query_id);
  if (handler) handler(out);
}

void ItineraryWindowQuery::TeardownQueryState(uint64_t query_id) {
  replied_.erase(query_id);
  last_hop_seen_.erase(query_id);
  auto cit = collections_.find(query_id);
  if (cit != collections_.end()) {
    network_->sim().Cancel(cit->second.finish_event);
    collections_.erase(cit);
    ++stats_.collections_cancelled;
  }
}

void ItineraryWindowQuery::CompleteQuery(uint64_t query_id, bool timed_out) {
  auto it = pending_.find(query_id);
  if (it == pending_.end() || it->second.completed) return;
  PendingQuery& pending = it->second;
  pending.completed = true;
  if (timed_out) ++stats_.timeouts;

  WindowResult out;
  out.query_id = query_id;
  out.issued_at = pending.issued_at;
  out.completed_at = network_->sim().Now();
  out.timed_out = timed_out;

  WindowResultHandler handler = std::move(pending.handler);
  pending_.erase(it);
  TeardownQueryState(query_id);
  if (handler) handler(out);
}

}  // namespace diknn
