#include "knn/window.h"

#include <algorithm>
#include <cmath>

#include "knn/itinerary.h"
#include "net/packet_pool.h"

namespace diknn {

namespace {
constexpr size_t kBootstrapBytes = 22;
constexpr size_t kProbeBytes = 30;
constexpr size_t kCandidateBytes = 12;
}  // namespace

SerpentinePath::SerpentinePath(const Rect& window, double spacing)
    : window_(window), spacing_(spacing) {
  // Scan lines at heights min.y + w/2, min.y + 3w/2, ..., covering the
  // window with a w/2 margin above and below each line.
  num_lines_ = std::max(
      1, static_cast<int>(std::ceil(window.Height() / spacing_)));
  total_length_ =
      num_lines_ * window_.Width() + (num_lines_ - 1) * spacing_;
}

Point SerpentinePath::PointAt(double s) const {
  s = std::clamp(s, 0.0, total_length_);
  const double segment = window_.Width() + spacing_;  // Line + riser.
  int line = static_cast<int>(s / segment);
  if (line >= num_lines_) line = num_lines_ - 1;
  const double offset = s - line * segment;

  const double y0 = std::min(window_.min.y + spacing_ / 2.0, window_.max.y);
  const double y = std::min(y0 + line * spacing_, window_.max.y);
  const bool rightward = (line % 2) == 0;

  if (offset <= window_.Width()) {
    const double x = rightward ? window_.min.x + offset
                               : window_.max.x - offset;
    return {x, y};
  }
  // Riser between this line and the next.
  const double up = offset - window_.Width();
  const double x = rightward ? window_.max.x : window_.min.x;
  return {x, std::min(y + up, window_.max.y)};
}

ItineraryWindowQuery::ItineraryWindowQuery(Network* network,
                                           GpsrRouting* gpsr,
                                           WindowQueryParams params)
    : network_(network), gpsr_(gpsr), params_(params) {}

double ItineraryWindowQuery::EffectiveWidth() const {
  return params_.width > 0.0
             ? params_.width
             : DefaultItineraryWidth(network_->config().radio_range_m);
}

FlatSet<NodeId>& ItineraryWindowQuery::RepliedFor(uint64_t query_id) {
  auto [kv, inserted] = replied_.TryEmplace(query_id);
  if (inserted && !replied_freelist_.empty()) {
    kv->second = std::move(replied_freelist_.back());
    replied_freelist_.pop_back();
  }
  return kv->second;
}

void ItineraryWindowQuery::RecycleReplied(uint64_t query_id) {
  FlatSet<NodeId>* replied = replied_.find(query_id);
  if (replied == nullptr) return;
  replied->clear();
  replied_freelist_.push_back(std::move(*replied));
  replied_.erase(query_id);
}

void ItineraryWindowQuery::RecycleReplies(
    std::vector<KnnCandidate>* replies) {
  replies->clear();
  replies_freelist_.push_back(std::move(*replies));
}

void ItineraryWindowQuery::Install() {
  gpsr_->RegisterDelivery(
      MessageType::kWindowQuery,
      [this](Node* node, const GeoRoutedMessage& msg) {
        AllocScope scope(&knn_allocs_);
        OnEntryArrival(node, msg);
      });
  gpsr_->RegisterDelivery(
      MessageType::kWindowResult,
      [this](Node* node, const GeoRoutedMessage& msg) {
        AllocScope scope(&knn_allocs_);
        OnResult(node, msg);
      });
  for (Node* node : network_->AllNodes()) {
    node->RegisterHandler(
        MessageType::kWindowProbe, [this, node](const Packet& p) {
          AllocScope scope(&knn_allocs_);
          OnProbe(node, *static_cast<const ProbeMessage*>(p.payload.get()));
        });
    node->RegisterHandler(
        MessageType::kWindowReply, [this, node](const Packet& p) {
          AllocScope scope(&knn_allocs_);
          OnReply(node, *static_cast<const ReplyMessage*>(p.payload.get()));
        });
    node->RegisterHandler(
        MessageType::kWindowForward, [this, node](const Packet& p) {
          AllocScope scope(&knn_allocs_);
          const auto* fwd =
              static_cast<const ForwardMessage*>(p.payload.get());
          auto copy = MessagePool::MakeReusable<ForwardMessage>();
          copy->state = fwd->state;
          StartQNode(node, std::move(copy));
        });
  }
}

void ItineraryWindowQuery::IssueQuery(NodeId sink, const Rect& window,
                                      WindowResultHandler handler) {
  AllocScope scope(&knn_allocs_);
  Node* sink_node = network_->node(sink);
  WindowQuery query;
  query.id = next_query_id_++;
  query.window = window;
  query.sink = sink;
  query.sink_position = sink_node->Position();

  // Budget the timeout for the sweep's actual length: one Q-node hop per
  // step_fraction * r of path, at roughly half a second per hop, plus
  // routing slack.
  const SerpentinePath path(window, EffectiveWidth());
  const double per_hop = 0.5;
  const double expected_hops =
      path.TotalLength() /
      (params_.step_fraction * network_->config().radio_range_m);
  const SimTime timeout =
      std::max(params_.query_timeout, expected_hops * per_hop + 4.0);

  PendingQuery pending;
  pending.query = query;
  pending.handler = std::move(handler);
  pending.issued_at = network_->sim().Now();
  const uint64_t id = query.id;
  pending.timeout_event = network_->sim().ScheduleAfter(
      timeout, [this, id]() { CompleteQuery(id, true); });
  pending_.TryEmplace(id, std::move(pending));
  ++stats_.queries_issued;

  // Enter the sweep at the start of the serpentine path (the window's
  // lower-left scan line).
  auto bootstrap = MessagePool::Make<QueryBootstrap>();
  bootstrap->query = query;
  gpsr_->Send(sink_node, path.PointAt(0.0), MessageType::kWindowQuery,
              std::move(bootstrap), kBootstrapBytes, EnergyCategory::kQuery);
}

void ItineraryWindowQuery::OnEntryArrival(Node* node,
                                          const GeoRoutedMessage& msg) {
  const auto* bootstrap =
      static_cast<const QueryBootstrap*>(msg.inner.get());
  auto fwd = MessagePool::MakeReusable<ForwardMessage>();
  fwd->state.query = bootstrap->query;
  fwd->state.progress = 0.0;
  StartQNode(node, std::move(fwd));
}

void ItineraryWindowQuery::StartQNode(Node* node,
                                      std::shared_ptr<ForwardMessage> fwd) {
  SweepState& state = fwd->state;
  // A forward that outlived its query must not re-seed last_hop_seen_ or
  // open a new collection; the sweep dies here.
  if (!QueryActive(state.query.id)) {
    ++stats_.stale_drops;
    return;
  }
  // Fork suppression, as in DIKNN (see diknn.h).
  {
    auto [kv, inserted] =
        last_hop_seen_.TryEmplace(state.query.id, state.hop_count);
    if (!inserted) {
      if (state.hop_count <= kv->second) return;
      kv->second = state.hop_count;
    }
  }
  ++stats_.qnode_hops;

  const SimTime now = network_->sim().Now();
  int expected = 0;
  node->neighbors().ForEachFresh(now, [&](const NeighborEntry& n) {
    if (state.query.window.Contains(n.position)) ++expected;
  });
  const double window_s =
      params_.time_unit * std::clamp(expected / 2 + 1, 3, 20);

  auto probe = MessagePool::Make<ProbeMessage>();
  probe->query_id = state.query.id;
  probe->window = state.query.window;
  probe->qnode_position = node->Position();
  probe->reference_angle =
      AngleOf(node->Position(), state.query.window.Center());
  probe->collect_window = window_s;

  const uint64_t id = state.query.id;
  Collection collection;
  collection.fwd = std::move(fwd);
  collection.qnode = node->id();
  if (!replies_freelist_.empty()) {
    collection.replies = std::move(replies_freelist_.back());
    replies_freelist_.pop_back();
  }
  // A deeper fork supersedes an open collection; cancel the superseded
  // finish timer so it cannot close the new collection early.
  if (Collection* old = collections_.find(id)) {
    network_->sim().Cancel(old->finish_event);
    RecycleReplies(&old->replies);
  }
  collections_.InsertOrAssign(id, std::move(collection));

  node->SendBroadcast(MessageType::kWindowProbe, std::move(probe),
                      kProbeBytes, EnergyCategory::kQuery);
  collections_.find(id)->finish_event = network_->sim().ScheduleAfter(
      window_s + 5.0 * params_.time_unit,
      [this, id]() { FinishCollection(id); });
}

void ItineraryWindowQuery::OnProbe(Node* node, const ProbeMessage& probe) {
  if (node->is_infrastructure()) return;
  if (!QueryActive(probe.query_id)) {
    ++stats_.stale_drops;
    return;
  }
  if (!probe.window.Contains(node->Position())) return;
  FlatSet<NodeId>& replied = RepliedFor(probe.query_id);
  if (replied.contains(node->id())) return;
  replied.insert(node->id());

  const double alpha = NormalizeAngle(
      AngleOf(probe.qnode_position, node->Position()) -
      probe.reference_angle);
  const double delay = (alpha / kTwoPi) * probe.collect_window;
  const uint64_t query_id = probe.query_id;
  // The un-mark paths below must not use RepliedFor: after the query
  // completes and its replied_ entry is torn down, re-creating it would
  // leave permanent residue.
  const auto unmark = [this](uint64_t qid, NodeId nid) {
    if (FlatSet<NodeId>* r = replied_.find(qid)) r->erase(nid);
  };
  network_->sim().ScheduleAfter(delay, [this, node, query_id, unmark]() {
    AllocScope scope(&knn_allocs_);
    if (!node->alive()) return;
    Collection* collection = collections_.find(query_id);
    if (collection == nullptr) {
      unmark(query_id, node->id());
      return;
    }
    auto reply = MessagePool::Make<ReplyMessage>();
    reply->query_id = query_id;
    reply->candidate.id = node->id();
    reply->candidate.position = node->Position();
    reply->candidate.speed = node->Speed();
    reply->candidate.sampled_at = network_->sim().Now();
    node->SendUnicast(collection->qnode, MessageType::kWindowReply,
                      std::move(reply), kQueryResponseBytes,
                      EnergyCategory::kQuery,
                      [query_id, node, unmark](bool ok) {
                        if (!ok) unmark(query_id, node->id());
                      });
    ++stats_.replies;
  });
}

void ItineraryWindowQuery::OnReply(Node* node, const ReplyMessage& reply) {
  Collection* collection = collections_.find(reply.query_id);
  if (collection == nullptr || collection->qnode != node->id()) return;
  collection->replies.push_back(reply.candidate);
}

void ItineraryWindowQuery::FinishCollection(uint64_t query_id) {
  AllocScope scope(&knn_allocs_);
  Collection* found = collections_.find(query_id);
  if (found == nullptr) return;
  Collection collection = std::move(*found);
  collections_.erase(query_id);
  if (!QueryActive(query_id)) {
    ++stats_.stale_drops;
    RecycleReplies(&collection.replies);
    return;
  }

  Node* node = network_->node(collection.qnode);
  SweepState& state = collection.fwd->state;
  for (const KnnCandidate& c : collection.replies) {
    state.collected.push_back(c);
  }
  if (!node->is_infrastructure() &&
      state.query.window.Contains(node->Position()) &&
      RepliedFor(query_id).insert(node->id())) {
    KnnCandidate self;
    self.id = node->id();
    self.position = node->Position();
    self.speed = node->Speed();
    self.sampled_at = network_->sim().Now();
    state.collected.push_back(self);
  }
  RecycleReplies(&collection.replies);
  ForwardAlongSweep(node, std::move(collection.fwd));
}

void ItineraryWindowQuery::ForwardAlongSweep(
    Node* node, std::shared_ptr<ForwardMessage> fwd) {
  SweepState& state = fwd->state;
  // Also reached from unicast-failure retries, which may fire after the
  // query completed; a dead query's sweep must not keep hopping.
  if (!QueryActive(state.query.id)) {
    ++stats_.stale_drops;
    return;
  }
  const SimTime now = network_->sim().Now();
  const double step =
      params_.step_fraction * network_->config().radio_range_m;
  const SerpentinePath path(state.query.window, EffectiveWidth());

  double next_s = state.progress + step;
  int skips = 0;
  while (true) {
    if (next_s > path.TotalLength()) {
      FinishSweep(node, &state);
      return;
    }
    const Point anchor = path.PointAt(next_s);
    NodeId next_id = kInvalidNodeId;
    double best_d = Distance(node->Position(), anchor);
    const double tolerance = EffectiveWidth() / 2.0;
    node->neighbors().ForEachFresh(now, [&](const NeighborEntry& n) {
      const double d = Distance(n.position, anchor);
      if ((d < best_d || d <= tolerance) &&
          (next_id == kInvalidNodeId || d < best_d)) {
        best_d = d;
        next_id = n.id;
      }
    });
    if (next_id == kInvalidNodeId) {
      ++stats_.voids;
      if (++skips > params_.max_void_skips) {
        FinishSweep(node, &state);
        return;
      }
      next_s += step;
      continue;
    }

    // Pre-advance copy in its own pooled envelope, released on success.
    auto retry = MessagePool::MakeReusable<ForwardMessage>();
    retry->state = state;
    state.progress = next_s;
    ++state.hop_count;
    const size_t bytes = state.WireBytes();
    node->SendUnicast(next_id, MessageType::kWindowForward, std::move(fwd),
                      bytes, EnergyCategory::kQuery,
                      [this, node, next_id, retry](bool ok) mutable {
                        if (ok) return;
                        AllocScope scope(&knn_allocs_);
                        const int* last =
                            last_hop_seen_.find(retry->state.query.id);
                        if (last != nullptr &&
                            *last > retry->state.hop_count) {
                          return;  // The traversal is already ahead.
                        }
                        node->neighbors().Remove(next_id);
                        ForwardAlongSweep(node, std::move(retry));
                      });
    return;
  }
}

void ItineraryWindowQuery::FinishSweep(Node* node, SweepState* state_in) {
  SweepState& state = *state_in;
  auto result = MessagePool::MakeReusable<ResultMessage>();
  result->query_id = state.query.id;
  result->nodes = state.collected;  // Copy into the recycled buffer.
  const size_t bytes = 10 + result->nodes.size() * kCandidateBytes;
  gpsr_->Send(node, state.query.sink_position, MessageType::kWindowResult,
              std::move(result), bytes, EnergyCategory::kQuery, false,
              state.query.sink);
}

void ItineraryWindowQuery::OnResult(Node* node, const GeoRoutedMessage& msg) {
  const auto* result = static_cast<const ResultMessage*>(msg.inner.get());
  PendingQuery* found = pending_.find(result->query_id);
  if (found == nullptr) return;
  PendingQuery& pending = *found;
  if (node->id() != pending.query.sink || pending.completed) return;

  pending.completed = true;
  network_->sim().Cancel(pending.timeout_event);
  ++stats_.queries_completed;

  WindowResult out;
  out.query_id = result->query_id;
  out.nodes = result->nodes;
  out.issued_at = pending.issued_at;
  out.completed_at = network_->sim().Now();
  // Deduplicate (forks may have double-collected) and drop anything the
  // sweep picked up that has since left the window... reports reflect
  // collection-time positions, so keep them; dedup only.
  PruneCandidates(&out.nodes, pending.query.window.Center(),
                  out.nodes.size());

  WindowResultHandler handler = std::move(pending.handler);
  pending_.erase(result->query_id);
  TeardownQueryState(result->query_id);
  if (handler) handler(out);
}

void ItineraryWindowQuery::TeardownQueryState(uint64_t query_id) {
  RecycleReplied(query_id);
  last_hop_seen_.erase(query_id);
  if (Collection* open = collections_.find(query_id)) {
    network_->sim().Cancel(open->finish_event);
    RecycleReplies(&open->replies);
    collections_.erase(query_id);
    ++stats_.collections_cancelled;
  }
}

void ItineraryWindowQuery::CompleteQuery(uint64_t query_id, bool timed_out) {
  AllocScope scope(&knn_allocs_);
  PendingQuery* found = pending_.find(query_id);
  if (found == nullptr || found->completed) return;
  PendingQuery& pending = *found;
  pending.completed = true;
  if (timed_out) ++stats_.timeouts;

  WindowResult out;
  out.query_id = query_id;
  out.issued_at = pending.issued_at;
  out.completed_at = network_->sim().Now();
  out.timed_out = timed_out;

  WindowResultHandler handler = std::move(pending.handler);
  pending_.erase(query_id);
  TeardownQueryState(query_id);
  if (handler) handler(out);
}

}  // namespace diknn
