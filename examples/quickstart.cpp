// Quickstart: build a 200-node mobile sensor network, run one DIKNN query,
// and print the result next to the ground truth.
//
//   $ ./build/examples/quickstart
//
// This is the smallest end-to-end use of the library: a Network, GPSR,
// the Diknn protocol, one IssueQuery() call, and the oracle for scoring.

#include <cstdio>

#include "harness/experiment.h"

int main() {
  using namespace diknn;

  // The paper's default setup: 200 nodes on 115x115 m^2, radio range 20 m,
  // random-waypoint mobility at up to 10 m/s (ExperimentConfig defaults).
  ExperimentConfig config;
  config.protocol = ProtocolKind::kDiknn;

  ProtocolStack stack(config, /*seed=*/7);
  Network& net = stack.network();
  net.Warmup(2.0);  // Let beacons populate the neighbor tables.

  std::printf("network: %d nodes, field %.0fx%.0f m, avg degree %.1f\n",
              net.size(), net.config().field.Width(),
              net.config().field.Height(), net.AverageDegree());

  // Ask for the 10 sensors nearest to the field center, from node 0.
  const Point q{57.5, 57.5};
  const int k = 10;
  const auto truth = net.TrueKnn(q, k);

  bool done = false;
  stack.protocol().IssueQuery(0, q, k, [&](const KnnResult& result) {
    done = true;
    std::printf("query %llu finished in %.3f s (%s)\n",
                static_cast<unsigned long long>(result.query_id),
                result.Latency(), result.timed_out ? "timeout" : "ok");
    std::printf("returned %zu candidates:", result.candidates.size());
    for (const KnnCandidate& c : result.candidates) {
      std::printf(" %d(%.1fm)", c.id, Distance(c.position, q));
    }
    std::printf("\n");
    const double acc = Accuracy(result.CandidateIds(), truth);
    std::printf("accuracy vs issue-time ground truth: %.0f%%\n", acc * 100);
  });

  net.sim().RunUntil(net.sim().Now() + 10.0);
  if (!done) {
    std::printf("query never completed!\n");
    return 1;
  }

  std::printf("ground truth:");
  for (NodeId id : truth) std::printf(" %d", id);
  std::printf("\n");
  std::printf("query energy spent: %.4f J\n",
              net.TotalEnergy(EnergyCategory::kQuery));
  std::printf("gpsr: %llu greedy hops, %llu perimeter hops\n",
              static_cast<unsigned long long>(stack.gpsr().stats().greedy_hops),
              static_cast<unsigned long long>(
                  stack.gpsr().stats().perimeter_hops));
  return 0;
}
