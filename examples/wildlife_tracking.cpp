// Wildlife tracking: the paper's motivating Fig. 7 scenario.
//
// A herd-structured deployment (think collar-tagged caribou, as in the
// ZebraNet-style systems the paper cites) is queried by a stationary base
// station: "which k animals are nearest to the watering hole right now?"
// The example runs DIKNN over a clustered field, issues a series of
// queries at different points of interest, and reports accuracy against
// the ground-truth oracle.
//
//   $ ./build/examples/wildlife_tracking

#include <cstdio>

#include "harness/experiment.h"

int main() {
  using namespace diknn;

  ExperimentConfig config;
  config.protocol = ProtocolKind::kDiknn;
  config.network.node_count = 400;
  config.network.field = Rect::Field(250, 250);
  config.network.placement = PlacementKind::kClustered;
  config.network.clusters.num_clusters = 4;     // Four herds.
  config.network.clusters.sigma_fraction = 0.08;
  config.network.clusters.background_fraction = 0.15;
  config.network.max_speed = 3.0;               // Grazing pace.
  config.diknn.query_timeout = 15.0;

  ProtocolStack stack(config, /*seed=*/2026);
  Network& net = stack.network();
  net.Warmup(2.5);
  std::printf("herd network: %d collars on %.0fx%.0f m, degree %.1f\n",
              net.size(), net.config().field.Width(),
              net.config().field.Height(), net.AverageDegree());

  // Points of interest: sampled at live collar positions (dense areas).
  Rng rng(9);
  const int kQueries = 6;
  const int k = 25;
  double total_accuracy = 0.0;
  int completed = 0;

  for (int i = 0; i < kQueries; ++i) {
    // Watering holes are where herds gather: sample collar positions
    // until one has its k-th nearest companion within 40 m (i.e., it is
    // in a herd, not a lone straggler in the steppe).
    // (Also keep the watering hole within plausible multi-hop reach of
    // the base station — a herd on the far side of an empty valley is
    // disconnected from the network and no in-network protocol can query
    // it.)
    const Point base = net.node(0)->Position();
    Point poi;
    while (true) {
      poi = net.node(rng.UniformInt(0, net.size() - 1))->Position();
      const auto herd = net.TrueKnn(poi, k);
      if (Distance(net.node(herd.back())->Position(), poi) <= 40.0 &&
          Distance(poi, base) <= 120.0) {
        break;
      }
    }
    bool done = false;
    stack.protocol().IssueQuery(0, poi, k, [&](const KnnResult& result) {
      done = true;
      const double accuracy =
          Accuracy(result.CandidateIds(), net.TrueKnn(poi, k));
      total_accuracy += accuracy;
      ++completed;
      std::printf(
          "poi (%5.1f,%5.1f): %2zu collars in %.2f s, accuracy %3.0f%%%s\n",
          poi.x, poi.y, result.candidates.size(), result.Latency(),
          accuracy * 100, result.timed_out ? " (timeout)" : "");
    });
    while (!done) net.sim().RunUntil(net.sim().Now() + 0.25);
    net.sim().RunUntil(net.sim().Now() + 1.0);  // Settle between queries.
  }

  std::printf("\n%d/%d queries answered, mean accuracy %.0f%%\n", completed,
              kQueries, 100 * total_accuracy / completed);
  std::printf("query energy: %.3f J across the whole herd network\n",
              net.TotalEnergy(EnergyCategory::kQuery));
  const DiknnStats& stats = stack.diknn()->stats();
  std::printf("itinerary voids bypassed: %llu, boundary extensions: %llu\n",
              static_cast<unsigned long long>(stats.voids_encountered),
              static_cast<unsigned long long>(stats.boundary_extensions));
  return completed == kQueries ? 0 : 1;
}
