// Environmental monitoring with in-network aggregation.
//
// A gas plume drifts across a sensor field. The base station tracks it
// with itinerary *aggregate* queries — the query carries a constant-size
// count/sum/min/max instead of hauling every reading home (the serial
// data-fusion lineage of the paper's reference [28]) — and compares the
// energy bill against the collect-everything window query on an identical
// region.
//
//   $ ./build/examples/environmental_monitoring

#include <cstdio>

#include "harness/experiment.h"
#include "knn/aggregate.h"
#include "knn/window.h"
#include "net/sensor_field.h"

int main() {
  using namespace diknn;

  NetworkConfig net_config;
  net_config.seed = 404;
  net_config.static_node_count = 1;
  net_config.max_speed = 3.0;
  Network net(net_config);
  GpsrRouting gpsr(&net);
  gpsr.Install();

  // A plume drifting east at 1.5 m/s over a clean baseline.
  SensorField field(/*baseline=*/1.0,
                    {FieldSource{{20, 60}, {1.5, 0.0},
                                 /*amplitude=*/40.0, /*sigma=*/18.0}},
                    /*noise_stddev=*/0.3, /*noise_seed=*/5);

  ItineraryAggregateQuery aggregate(&net, &gpsr, &field);
  ItineraryWindowQuery window(&net, &gpsr);
  aggregate.Install();
  window.Install();
  net.Warmup(2.5);

  std::printf("tracking a drifting plume with aggregate queries over the "
              "center region [30,90]^2\n\n");
  std::printf("%8s %8s %8s %8s %8s %10s\n", "t(s)", "count", "mean",
              "max", "lat(s)", "plume at");

  const Rect region{{30, 30}, {90, 90}};
  for (int round = 0; round < 5; ++round) {
    bool done = false;
    aggregate.IssueQuery(0, region, [&](const AggregateResult& result) {
      done = true;
      const Point plume = field.SourcePosition(0, net.sim().Now());
      if (result.timed_out || result.value.count == 0) {
        std::printf("%8.1f %8s %8s %8s %8.2f   (%3.0f,%3.0f)  lost\n",
                    net.sim().Now(), "-", "-", "-", result.Latency(),
                    plume.x, plume.y);
        return;
      }
      std::printf("%8.1f %8llu %8.2f %8.2f %8.2f   (%3.0f,%3.0f)\n",
                  net.sim().Now(),
                  static_cast<unsigned long long>(result.value.count),
                  result.value.Mean(), result.value.max,
                  result.Latency(), plume.x, plume.y);
    });
    while (!done) net.sim().RunUntil(net.sim().Now() + 0.25);
    net.sim().RunUntil(net.sim().Now() + 8.0);
  }

  // Cost comparison on one shot: aggregation vs full collection.
  const double agg_e0 = net.TotalEnergy(EnergyCategory::kQuery);
  bool done = false;
  aggregate.IssueQuery(0, region, [&](const AggregateResult&) {
    done = true;
  });
  while (!done) net.sim().RunUntil(net.sim().Now() + 0.25);
  const double agg_cost = net.TotalEnergy(EnergyCategory::kQuery) - agg_e0;

  const double win_e0 = net.TotalEnergy(EnergyCategory::kQuery);
  done = false;
  size_t collected = 0;
  window.IssueQuery(0, region, [&](const WindowResult& result) {
    done = true;
    collected = result.nodes.size();
  });
  while (!done) net.sim().RunUntil(net.sim().Now() + 0.25);
  const double win_cost = net.TotalEnergy(EnergyCategory::kQuery) - win_e0;

  std::printf("\nsame region, one query each:\n");
  std::printf("  aggregate (constant-size fusion): %.3f J\n", agg_cost);
  std::printf("  window (collect %zu readings):    %.3f J  (%.1fx)\n",
              collected, win_cost, win_cost / agg_cost);
  return 0;
}
