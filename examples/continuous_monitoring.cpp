// Continuous KNN monitoring under node churn.
//
// A base station keeps a standing watch on the 12 sensors nearest a
// protected asset while nodes fail and recover around it. Each refresh
// round reports only the delta — who entered and who left the nearest
// set — the natural API for a monitoring console.
//
//   $ ./build/examples/continuous_monitoring

#include <cstdio>

#include "harness/experiment.h"
#include "knn/continuous.h"
#include "net/churn.h"

int main() {
  using namespace diknn;

  ExperimentConfig config;
  config.protocol = ProtocolKind::kDiknn;
  ProtocolStack stack(config, /*seed=*/31);
  Network& net = stack.network();

  // Flaky hardware: nodes die for ~15 s stretches and come back.
  ChurnParams churn_params;
  churn_params.mean_up_time = 40.0;
  churn_params.mean_down_time = 15.0;
  NodeChurn churn(&net.sim(), net.AllNodes(), churn_params, Rng(8),
                  /*protected_prefix=*/1);
  churn.Start();
  net.Warmup(2.5);

  const Point asset{70, 45};
  const int k = 12;
  std::printf("watching the %d sensors nearest the asset at (%.0f,%.0f), "
              "refresh every 6 s, with node churn\n\n",
              k, asset.x, asset.y);

  ContinuousKnn monitor(&net, &stack.protocol());
  int rounds = 0;
  monitor.Subscribe(
      0, asset, k, /*period=*/6.0, /*rounds=*/8,
      [&](const KnnUpdate& update) {
        ++rounds;
        std::printf("round %d (t=%6.1fs, alive %3.0f%%): %2zu tracked",
                    update.round, net.sim().Now(),
                    100 * churn.AliveFraction(),
                    update.result.candidates.size());
        if (update.round == 0) {
          std::printf(", initial set of %zu\n", update.added.size());
          return;
        }
        if (!update.Changed()) {
          std::printf(", unchanged\n");
          return;
        }
        std::printf(", +%zu -%zu  [in:", update.added.size(),
                    update.removed.size());
        for (NodeId id : update.added) std::printf(" %d", id);
        std::printf(" | out:");
        for (NodeId id : update.removed) std::printf(" %d", id);
        std::printf("]\n");
      });

  net.sim().RunUntil(net.sim().Now() + 60.0);
  std::printf("\nchurn over the hour: %llu failures, %llu recoveries\n",
              static_cast<unsigned long long>(churn.stats().failures),
              static_cast<unsigned long long>(churn.stats().recoveries));
  return rounds == 8 ? 0 : 1;
}
