// Battlefield surveillance: the paper's REMBASS-style motivation, with
// node attrition.
//
// A mobile sensor field answers "which k sensors are nearest to the
// incident?" while nodes progressively fail (are destroyed). DIKNN keeps
// answering because it maintains no infrastructure to break — this
// example kills 30% of the network mid-run and shows queries before and
// after, including one centered on the destroyed region.
//
//   $ ./build/examples/battlefield_monitoring

#include <cstdio>
#include <vector>

#include "harness/experiment.h"

namespace {

using namespace diknn;

double RunQuery(ProtocolStack& stack, const Point& q, int k,
                const char* label) {
  Network& net = stack.network();
  double accuracy = -1;
  bool done = false;
  stack.protocol().IssueQuery(0, q, k, [&](const KnnResult& result) {
    done = true;
    accuracy = Accuracy(result.CandidateIds(), net.TrueKnn(q, k));
    std::printf("%-28s %2zu/%d sensors, %.2f s, accuracy %3.0f%%%s\n",
                label, result.candidates.size(), k, result.Latency(),
                accuracy * 100, result.timed_out ? " (timeout)" : "");
  });
  while (!done) net.sim().RunUntil(net.sim().Now() + 0.25);
  net.sim().RunUntil(net.sim().Now() + 1.0);
  return accuracy;
}

}  // namespace

int main() {
  using namespace diknn;

  ExperimentConfig config;
  config.protocol = ProtocolKind::kDiknn;
  config.network.node_count = 250;
  config.network.field = Rect::Field(130, 130);
  config.network.max_speed = 8.0;  // Vehicle-mounted sensors.
  ProtocolStack stack(config, /*seed=*/7777);
  Network& net = stack.network();
  net.Warmup(2.5);
  std::printf("battlefield: %d sensors deployed, degree %.1f\n\n",
              net.size(), net.AverageDegree());

  const int k = 20;
  const Point incident{95, 30};
  const Point strike_center{40, 90};

  RunQuery(stack, incident, k, "pre-strike, incident A:");
  RunQuery(stack, strike_center, k, "pre-strike, incident B:");

  // Artillery strike: destroy every sensor within 25 m of the strike.
  int destroyed = 0;
  for (int i = 1; i < net.size(); ++i) {  // Keep the base station alive.
    if (Distance(net.node(i)->Position(), strike_center) < 25.0) {
      net.node(i)->set_alive(false);
      ++destroyed;
    }
  }
  // Plus random attrition across the field (shrapnel, jamming, battery).
  Rng rng(1);
  for (int i = 1; i < net.size(); ++i) {
    if (net.node(i)->alive() && rng.Bernoulli(0.15)) {
      net.node(i)->set_alive(false);
      ++destroyed;
    }
  }
  std::printf("\n*** strike: %d sensors destroyed (%.0f%% of the field) "
              "***\n\n",
              destroyed, 100.0 * destroyed / net.size());
  // Let neighbor tables purge the dead.
  net.sim().RunUntil(net.sim().Now() + 2.0);

  const double a1 = RunQuery(stack, incident, k, "post-strike, incident A:");
  const double a2 =
      RunQuery(stack, strike_center, k, "post-strike, strike zone:");

  std::printf("\nno infrastructure to rebuild: queries keep working off "
              "the surviving topology.\n");
  std::printf("gpsr perimeter hops (void routing around the crater): "
              "%llu\n",
              static_cast<unsigned long long>(
                  stack.gpsr().stats().perimeter_hops));
  return (a1 >= 0 && a2 >= 0) ? 0 : 1;
}
