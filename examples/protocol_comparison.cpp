// Protocol comparison at a glance: runs the same small workload through
// DIKNN, KPT+KNNB, Peer-tree and naive flooding, printing one summary row
// per protocol. A miniature of the paper's Section 5 evaluation — see
// bench/ for the full figure reproductions.
//
//   $ ./build/examples/protocol_comparison

#include <cstdio>

#include "harness/experiment.h"

int main() {
  using namespace diknn;

  std::printf("one 40-second workload, k = 20, defaults otherwise\n\n");
  std::printf("%-10s %10s %10s %9s %9s %9s\n", "protocol", "latency(s)",
              "energy(J)", "pre_acc", "post_acc", "queries");

  for (ProtocolKind kind :
       {ProtocolKind::kDiknn, ProtocolKind::kKptKnnb,
        ProtocolKind::kPeerTree, ProtocolKind::kFlooding}) {
    ExperimentConfig config;
    config.protocol = kind;
    config.k = 20;
    config.duration = 40.0;
    config.runs = 1;
    const RunMetrics m = RunOnce(config, /*seed=*/3);
    std::printf("%-10s %10.2f %10.3f %9.2f %9.2f %6d (%d t/o)\n",
                ProtocolName(kind), m.avg_latency, m.energy_joules,
                m.avg_pre_accuracy, m.avg_post_accuracy, m.queries,
                m.timeouts);
  }
  std::printf("\nthe full sweeps (Figs. 8 and 9) live in build/bench/.\n");
  return 0;
}
