#!/usr/bin/env bash
# Builds the ThreadSanitizer preset and runs the tests that exercise the
# parallel experiment harness under TSan. Any data race in the
# multi-threaded RunExperimentRuns path fails the run.
#
# Usage: scripts/check_tsan.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --preset tsan "$@"

echo "TSan check passed: parallel harness is race-free."
