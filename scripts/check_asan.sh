#!/usr/bin/env bash
# Builds the Address+UBSanitizer preset and runs the full test suite under
# it — most importantly the fault-injected lifecycle soak, where a leaked
# per-query entry or use-after-erase in a straggler path shows up as an
# ASan report instead of silent memory growth.
#
# Usage: scripts/check_asan.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  ctest --preset asan "$@"

echo "ASan/UBSan check passed: lifecycle soak is leak- and UB-free."
