#!/usr/bin/env python3
"""Convert bench output tables into CSV (and optionally plots).

The figure benches print fixed-width tables like:

    === Fig. 8: impact of k (scalability), mu_max = 10 m/s ===
    k          protocol     latency(s)    energy(J)    pre_acc   post_acc   timeout%
    20         DIKNN          1.634+-0.22      8.095      0.923      0.868       0.0%

This script parses every such table from a capture (e.g. the repository's
bench_output.txt) into tidy CSV, one file per table, and — when
matplotlib is importable — renders the paper's four panels per figure.

Usage:
    scripts/plot_results.py bench_output.txt -o out_dir
"""

import argparse
import csv
import os
import re
import sys

HEADER_RE = re.compile(r"^=== (.+) ===$")
COLUMNS = ["x", "protocol", "latency_s", "latency_std", "energy_j",
           "pre_acc", "post_acc", "timeout_pct"]
ROW_RE = re.compile(
    r"^(\S+)\s+(\S+)\s+([\d.]+)(?:±|\+-)([\d.]+)\s+([\d.]+)\s+"
    r"([\d.]+)\s+([\d.]+)\s+([\d.]+)%\s*$")


def slugify(title):
    slug = re.sub(r"[^a-zA-Z0-9]+", "_", title).strip("_").lower()
    return slug[:60]


def parse(path):
    """Yields (title, rows) for each table found in the capture."""
    title, rows = None, []
    with open(path, encoding="utf-8") as f:
        for line in f:
            header = HEADER_RE.match(line.strip())
            if header:
                if title and rows:
                    yield title, rows
                title, rows = header.group(1), []
                continue
            row = ROW_RE.match(line.rstrip())
            if row and title:
                rows.append(list(row.groups()))
    if title and rows:
        yield title, rows


def write_csv(out_dir, title, rows):
    path = os.path.join(out_dir, slugify(title) + ".csv")
    with open(path, "w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(COLUMNS)
        writer.writerows(rows)
    return path


def try_plot(out_dir, title, rows):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return None

    panels = [("latency_s", 2, "latency (s)"), ("energy_j", 4, "energy (J)"),
              ("post_acc", 6, "post-accuracy"), ("pre_acc", 5, "pre-accuracy")]
    protocols = sorted({r[1] for r in rows})
    fig, axes = plt.subplots(2, 2, figsize=(9, 7))
    fig.suptitle(title)
    for ax, (name, idx, label) in zip(axes.flat, panels):
        for protocol in protocols:
            xs, ys = [], []
            for r in rows:
                if r[1] != protocol:
                    continue
                xs.append(re.sub(r"[^\d.]", "", r[0]) or r[0])
                ys.append(float(r[idx]))
            ax.plot(xs, ys, marker="o", label=protocol)
        ax.set_ylabel(label)
        ax.grid(True, alpha=0.3)
    axes.flat[0].legend()
    path = os.path.join(out_dir, slugify(title) + ".png")
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    plt.close(fig)
    return path


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("capture", help="bench output capture to parse")
    parser.add_argument("-o", "--out", default="plots",
                        help="output directory (default: plots/)")
    args = parser.parse_args()

    os.makedirs(args.out, exist_ok=True)
    count = 0
    for title, rows in parse(args.capture):
        csv_path = write_csv(args.out, title, rows)
        png_path = try_plot(args.out, title, rows)
        print(f"{title}: {len(rows)} rows -> {csv_path}"
              + (f", {png_path}" if png_path else ""))
        count += 1
    if count == 0:
        print("no tables found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
