#!/usr/bin/env bash
# The whole pre-merge gauntlet in one command: release build + full test
# suite, the ASan/UBSan and TSan presets, and smoke passes of the
# workload and event-engine benches (seconds-long DIKNN_WORKLOAD_SMOKE /
# DIKNN_ENGINE_SMOKE runs, so the bench binaries themselves are
# exercised; DIKNN_CHECK_BENCH=0 skips them).
#
# Usage: scripts/check_all.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== release build + ctest =="
cmake --preset release
cmake --build --preset release -j "$(nproc)"
ctest --preset release --output-on-failure -j "$(nproc)"

echo "== ASan/UBSan =="
scripts/check_asan.sh --output-on-failure

echo "== TSan =="
scripts/check_tsan.sh --output-on-failure

if [[ "${DIKNN_CHECK_BENCH:-1}" != "0" ]]; then
  echo "== bench_workload smoke =="
  DIKNN_WORKLOAD_SMOKE=1 ./build/bench/bench_workload
  echo "== bench_engine smoke =="
  DIKNN_ENGINE_SMOKE=1 ./build/bench/bench_engine
fi

echo "All checks passed."
