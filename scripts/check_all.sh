#!/usr/bin/env bash
# The whole pre-merge gauntlet in one command: release build + full test
# suite, the ASan/UBSan and TSan presets, smoke passes of the workload,
# event-engine, observability, and micro benches (seconds-long
# DIKNN_WORKLOAD_SMOKE / DIKNN_ENGINE_SMOKE / DIKNN_OBS_SMOKE /
# DIKNN_MICRO_SMOKE runs, so the bench binaries themselves are exercised;
# bench_micro's steady-state allocation gate runs at full strength even
# in smoke mode; DIKNN_CHECK_BENCH=0 skips them), and a traced-query run
# whose Chrome-trace and metrics JSON are validated with python3 — the
# metrics must report zero steady-state packet-plane allocations
# (net.allocs == 0, net.alloc_per_frame == 0; see docs/PACKET_PLANE.md).
#
# Usage: scripts/check_all.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== release build + ctest =="
cmake --preset release
cmake --build --preset release -j "$(nproc)"
ctest --preset release --output-on-failure -j "$(nproc)"

echo "== ASan/UBSan =="
scripts/check_asan.sh --output-on-failure

echo "== TSan =="
scripts/check_tsan.sh --output-on-failure

if [[ "${DIKNN_CHECK_BENCH:-1}" != "0" ]]; then
  echo "== bench_workload smoke =="
  DIKNN_WORKLOAD_SMOKE=1 ./build/bench/bench_workload
  echo "== bench_engine smoke =="
  DIKNN_ENGINE_SMOKE=1 ./build/bench/bench_engine
  echo "== bench_obs smoke =="
  DIKNN_OBS_SMOKE=1 ./build/bench/bench_obs
  echo "== bench_micro smoke (allocation gate) =="
  DIKNN_MICRO_SMOKE=1 ./build/bench/bench_micro
  echo "== bench_pdes smoke (shard equivalence) =="
  DIKNN_PDES_SMOKE=1 ./build/bench/bench_pdes
  echo "== bench_pdes query smoke (served workload across shards) =="
  DIKNN_PDES_QUERY_SMOKE=1 ./build/bench/bench_pdes
fi

echo "== traced-query smoke =="
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
./build/tools/diknn-sim --runs 1 --duration 20 --nodes 120 --field 90 \
  --trace-out "$obs_dir/trace.json" --metrics-out "$obs_dir/metrics.json"
if command -v python3 >/dev/null; then
  python3 -m json.tool "$obs_dir/trace.json" >/dev/null
  python3 - "$obs_dir/metrics.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
allocs = doc["counters"].get("net.allocs")
per_frame = doc["gauges"].get("net.alloc_per_frame")
if allocs != 0 or per_frame != 0:
    raise SystemExit("allocation gate: expected net.allocs == 0 and "
                     f"net.alloc_per_frame == 0, got {allocs} / {per_frame}")
print("trace + metrics JSON well-formed; net.allocs == 0")
PY
else
  echo "python3 not found; skipping JSON validation"
fi

echo "== served-workload smoke =="
./build/tools/diknn-sim --runs 1 --duration 30 --nodes 120 --field 90 \
  --workload 'arrival@kind=poisson,rate=8;k@lo=10;space@kind=hotspot,n=2,sigma=5,skew=1.2;deadline@s=4;admit@inflight=128,queue=32,shed=1;cache@ttl=8,cells=3;coalesce@window=3,kslack=6' \
  --metrics-out "$obs_dir/served.json"
if command -v python3 >/dev/null; then
  python3 - "$obs_dir/served.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
hits = doc["counters"].get("serving.cache_hits", 0)
if hits <= 0:
    raise SystemExit("served-workload smoke: expected serving.cache_hits > 0, "
                     f"got {hits}")
print(f"serving.cache_hits = {hits}")
PY
else
  echo "python3 not found; skipping served-workload validation"
fi

echo "== flight-recorder smoke =="
# A served workload with the recorder on: the artifact must be valid
# JSON with at least one non-empty deterministic series, byte-identical
# across --jobs, and its deterministic section byte-identical between
# the 1-shard windowed engine and a 4-shard run (docs/OBSERVABILITY.md
# "Time series & flight recorder").
ts_workload='arrival@kind=poisson,rate=8;k@lo=6,hi=10;deadline@s=2;admit@inflight=24,queue=12'
./build/tools/diknn-sim --runs 2 --jobs 1 --duration 20 --nodes 120 --field 90 \
  --workload "$ts_workload" --ts-interval 1 --ts-out "$obs_dir/ts_jobs1.json"
./build/tools/diknn-sim --runs 2 --jobs 4 --duration 20 --nodes 120 --field 90 \
  --workload "$ts_workload" --ts-interval 1 --ts-out "$obs_dir/ts_jobs4.json"
cmp "$obs_dir/ts_jobs1.json" "$obs_dir/ts_jobs4.json" \
  || { echo "flight recording differs across --jobs"; exit 1; }
./build/tools/diknn-sim --runs 1 --duration 8 --nodes 1024 --field 560 \
  --windowed --workload "$ts_workload" --ts-interval 0.5 \
  --ts-out "$obs_dir/ts_shards1.json"
./build/tools/diknn-sim --runs 1 --duration 8 --nodes 1024 --field 560 \
  --shards 4 --workload "$ts_workload" --ts-interval 0.5 \
  --ts-out "$obs_dir/ts_shards4.json"
if command -v python3 >/dev/null; then
  python3 - "$obs_dir/ts_jobs1.json" "$obs_dir/ts_shards1.json" \
    "$obs_dir/ts_shards4.json" <<'PY'
import json, sys
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    series = doc["series"]
    if not any(s["v"] for s in series.values()):
        raise SystemExit(f"{path}: no non-empty deterministic series")
a, b = (json.load(open(p)) for p in sys.argv[2:4])
if (a["series"], a["annotations"]) != (b["series"], b["annotations"]):
    raise SystemExit("deterministic series differ across shard counts")
print(f"flight recording OK: {len(series)} deterministic series, "
      "bit-identical across --jobs and --shards")
PY
else
  echo "python3 not found; skipping flight-recorder validation"
fi

echo "All checks passed."
